// Package linz is a linearizability checker for concurrent histories of a
// sequential object type (package objtype), in the style of Wing & Gong's
// algorithm with memoization.
//
// A history is a set of operations, each with an invocation/response
// interval on a global clock and an observed response value. The checker
// searches for a linearization: a total order of all operations that (1)
// respects real time — if a completed operation's response precedes
// another's invocation, it must come first — and (2) replays through the
// sequential specification producing exactly the observed responses.
//
// The search is exponential in the worst case but fast in practice thanks
// to memoizing (chosen-set, state) pairs; histories from the tests here
// (tens of operations, bounded concurrency) check in microseconds. The
// checker is used to validate the universal constructions on the
// concurrent llsc backend, where no adversary round structure exists to
// make correctness self-evident.
package linz

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"jayanti98/internal/objtype"
	"jayanti98/internal/shmem"
)

// Op is one operation in a concurrent history — completed, or pending
// (invoked but never responded).
type Op struct {
	// ID identifies the operation (unique within the history).
	ID int
	// Proc is the invoking process (operations of one process must not
	// overlap).
	Proc int
	// Op is the operation applied to the object.
	Op objtype.Op
	// Response is the observed response; meaningless when Pending.
	Response objtype.Value
	// Invoke and Return are the global-clock timestamps of invocation and
	// response; Invoke < Return. A pending operation has Return set to
	// math.MaxInt64.
	Invoke, Return int64
	// Pending marks an operation that was invoked but never responded.
	// A pending operation may be linearized (with any response — it may
	// have taken effect before the crash/cut) or omitted entirely.
	Pending bool
}

// History is a collection of operations, completed and pending.
type History struct {
	n   int
	ops []Op
}

// NewHistory creates a history for an n-process object.
func NewHistory(n int) *History {
	return &History{n: n}
}

// Add appends a completed operation and returns its ID.
func (h *History) Add(proc int, op objtype.Op, response objtype.Value, invoke, ret int64) int {
	id := len(h.ops)
	h.ops = append(h.ops, Op{ID: id, Proc: proc, Op: op, Response: response, Invoke: invoke, Return: ret})
	return id
}

// AddPending appends a pending operation — invoked at the given timestamp,
// never responded — and returns its ID. The checker treats it as optional:
// a valid linearization may include it (with whatever response the
// sequential specification produces at its linearization point) or drop it.
// A pending operation must be its process's last, since the process never
// finished it.
func (h *History) AddPending(proc int, op objtype.Op, invoke int64) int {
	id := len(h.ops)
	h.ops = append(h.ops, Op{ID: id, Proc: proc, Op: op, Invoke: invoke, Return: math.MaxInt64, Pending: true})
	return id
}

// Len returns the number of operations.
func (h *History) Len() int { return len(h.ops) }

// Validate checks structural sanity: intervals well-formed and per-process
// operations non-overlapping.
func (h *History) Validate() error {
	byProc := make(map[int][]Op)
	for _, op := range h.ops {
		if op.Invoke >= op.Return {
			return fmt.Errorf("linz: op %d has empty interval [%d, %d]", op.ID, op.Invoke, op.Return)
		}
		byProc[op.Proc] = append(byProc[op.Proc], op)
	}
	for proc, ops := range byProc {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
		for i := 1; i < len(ops); i++ {
			if ops[i].Invoke < ops[i-1].Return {
				return fmt.Errorf("linz: process %d has overlapping operations %d and %d", proc, ops[i-1].ID, ops[i].ID)
			}
		}
	}
	return nil
}

// Result reports the outcome of a check.
type Result struct {
	// Linearizable reports whether a valid linearization exists.
	Linearizable bool
	// Order is a witness linearization (operation IDs) when one exists.
	Order []int
	// Explored counts search states visited.
	Explored int
}

// Check searches for a linearization of the history against typ (with the
// initial state for the history's process count). It returns an error only
// for structurally invalid histories; "not linearizable" is reported in
// the Result. An empty history is trivially linearizable. Pending
// operations are optional: they may appear in the witness order (their
// responses are unconstrained) or be left out.
func Check(typ objtype.Type, h *History) (Result, error) {
	if err := h.Validate(); err != nil {
		return Result{}, err
	}
	c := &checker{
		typ:  typ,
		n:    h.n,
		ops:  h.ops,
		memo: make(map[string]bool),
	}
	// Precompute real-time predecessors: op j must precede op i if
	// j.Return < i.Invoke... strictly: j completed before i was invoked.
	// A pending operation (Return = MaxInt64) precedes nothing.
	c.preds = make([][]int, len(h.ops))
	completed := 0
	for i, oi := range h.ops {
		if !oi.Pending {
			completed++
		}
		for j, oj := range h.ops {
			if i != j && oj.Return < oi.Invoke {
				c.preds[i] = append(c.preds[i], j)
			}
		}
	}
	order := make([]int, 0, len(h.ops))
	done := make([]bool, len(h.ops))
	ok := c.search(typ.Init(h.n), done, completed, &order)
	res := Result{Linearizable: ok, Explored: c.explored}
	if ok {
		res.Order = append([]int(nil), order...)
	}
	return res, nil
}

type checker struct {
	typ      objtype.Type
	n        int
	ops      []Op
	preds    [][]int
	memo     map[string]bool
	explored int
}

// search extends the linearization; done marks chosen ops, remaining counts
// the unchosen completed ops (pending ops never count — they are optional),
// order accumulates the witness (in reverse discovery: appended on success
// path going forward).
func (c *checker) search(state objtype.Value, done []bool, remaining int, order *[]int) bool {
	if remaining == 0 {
		return true
	}
	key := c.memoKey(done, state)
	if failed, seen := c.memo[key]; seen && failed {
		return false
	}
	c.explored++
	for i, op := range c.ops {
		if done[i] || !c.ready(i, done) {
			continue
		}
		next, resp := c.typ.Apply(state, op.Op)
		if !op.Pending && !shmem.ValuesEqual(resp, op.Response) {
			continue
		}
		left := remaining
		if !op.Pending {
			left--
		}
		done[i] = true
		*order = append(*order, i)
		if c.search(next, done, left, order) {
			return true
		}
		*order = (*order)[:len(*order)-1]
		done[i] = false
	}
	c.memo[key] = true // this (set, state) cannot be completed
	return false
}

// ready reports whether all real-time predecessors of op i are done.
func (c *checker) ready(i int, done []bool) bool {
	for _, j := range c.preds[i] {
		if !done[j] {
			return false
		}
	}
	return true
}

func (c *checker) memoKey(done []bool, state objtype.Value) string {
	var b strings.Builder
	for _, d := range done {
		if d {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	fmt.Fprintf(&b, "|%v", state)
	return b.String()
}

// Recorder builds a history from concurrent invocations using a logical
// clock. It is safe for concurrent use: call Begin before the operation's
// invocation and End after its response.
type Recorder struct {
	n     int
	clock atomic.Int64
	mu    sync.Mutex
	h     *History
}

// NewRecorder creates a recorder for an n-process history.
func NewRecorder(n int) *Recorder {
	return &Recorder{n: n, h: NewHistory(n)}
}

// Begin stamps an invocation and returns the timestamp.
func (r *Recorder) Begin() int64 { return r.clock.Add(1) }

// End records a completed operation.
func (r *Recorder) End(proc int, op objtype.Op, response objtype.Value, invoke int64) {
	ret := r.clock.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.h.Add(proc, op, response, invoke, ret)
}

// History returns the recorded history; call only after all operations
// have completed.
func (r *Recorder) History() *History {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.h
}
