package linz

import (
	"math/rand"
	"testing"

	"jayanti98/internal/objtype"
)

func fi() objtype.Op { return objtype.Op{Name: objtype.OpFetchIncrement} }

// TestPendingOperationOptional: a single pending op — invoked, never
// responded — is linearizable on its own: it may simply not have taken
// effect. Before pending support, such an operation was not even
// representable (a zero Return made the interval empty and Validate
// rejected the history).
func TestPendingOperationOptional(t *testing.T) {
	typ := objtype.NewFetchIncrement(8)
	h := NewHistory(2)
	h.AddPending(0, fi(), 1)
	res, err := Check(typ, h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("a lone pending op must be linearizable (it may be dropped)")
	}
}

// TestPendingOperationMustTakeEffect: a completed operation can force a
// pending one into the linearization — here a dequeue observes the value
// of an enqueue that never returned.
func TestPendingOperationMustTakeEffect(t *testing.T) {
	typ := objtype.NewEmptyQueue()
	h := NewHistory(2)
	pendID := h.AddPending(0, objtype.Op{Name: objtype.OpEnqueue, Arg: "x"}, 1)
	h.Add(1, objtype.Op{Name: objtype.OpDequeue}, "x", 2, 3)
	res, err := Check(typ, h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatal("dequeue observing the pending enqueue must linearize")
	}
	found := false
	for _, id := range res.Order {
		if id == pendID {
			found = true
		}
	}
	if !found {
		t.Fatalf("witness %v must include the pending enqueue %d", res.Order, pendID)
	}
}

// TestPendingCannotExplainTooMuch: one pending increment can account for
// at most one ticket; a completed response of "2" remains impossible.
func TestPendingCannotExplainTooMuch(t *testing.T) {
	typ := objtype.NewFetchIncrement(8)
	h := NewHistory(2)
	h.AddPending(0, fi(), 1)
	h.Add(1, fi(), "2", 2, 3)
	res, err := Check(typ, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("ticket 2 with only one possible prior increment must be rejected")
	}
}

// TestPendingMustBeProcessLast: a process cannot invoke again after a
// pending (never-responded) operation; Validate reports the overlap
// rather than panicking or silently accepting.
func TestPendingMustBeProcessLast(t *testing.T) {
	h := NewHistory(1)
	h.AddPending(0, fi(), 1)
	h.Add(0, fi(), "0", 5, 6)
	if err := h.Validate(); err == nil {
		t.Fatal("op after a pending op of the same process must be rejected")
	}
}

// TestValueInconsistentRealTimeOrdered: a fully real-time-ordered (no
// overlap anywhere) history whose responses are impossible is cleanly
// rejected — no panic, no silent acceptance.
func TestValueInconsistentRealTimeOrdered(t *testing.T) {
	typ := objtype.NewReadIncrement(8)
	h := NewHistory(2)
	h.Add(0, objtype.Op{Name: objtype.OpIncrement}, nil, 1, 2)
	h.Add(1, objtype.Op{Name: objtype.OpRead}, "5", 3, 4) // counter is 1
	res, err := Check(typ, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linearizable {
		t.Fatal("read of 5 after a single increment must be rejected")
	}
}

// --- Online checker ---

func TestOnlineAcceptsEitherOrderOfOverlappingOps(t *testing.T) {
	typ := objtype.NewFetchIncrement(8)
	o := NewOnline(typ, 2)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(o.Invoke(0, fi()))
	must(o.Invoke(1, fi()))
	must(o.Return(1, "0"))
	must(o.Return(0, "1"))
	if !o.Ok() {
		t.Fatalf("overlapping increments must be accepted: %s", o.Violation())
	}
}

func TestOnlineFlagsViolationAtReturn(t *testing.T) {
	typ := objtype.NewFetchIncrement(8)
	o := NewOnline(typ, 2)
	if err := o.Invoke(0, fi()); err != nil {
		t.Fatal(err)
	}
	if err := o.Return(0, "0"); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(1, fi()); err != nil {
		t.Fatal(err)
	}
	// p1 invoked strictly after p0 returned, so "0" is a stale ticket.
	if err := o.Return(1, "0"); err != nil {
		t.Fatal(err)
	}
	if o.Ok() {
		t.Fatal("duplicate ticket after real-time ordering must be rejected")
	}
	if o.Violation() == "" || o.Events() != 4 {
		t.Fatalf("violation %q events %d", o.Violation(), o.Events())
	}
}

func TestOnlineProtocolErrors(t *testing.T) {
	o := NewOnline(objtype.NewFetchIncrement(8), 2)
	if err := o.Invoke(0, fi()); err != nil {
		t.Fatal(err)
	}
	if err := o.Invoke(0, fi()); err == nil {
		t.Fatal("double invoke must error")
	}
	if err := o.Return(1, "0"); err == nil {
		t.Fatal("return without invoke must error")
	}
}

func TestOnlineKeyDistinguishesRealTimeResidue(t *testing.T) {
	typ := objtype.NewFetchIncrement(8)
	// Run A: p0's op completed before p1 invoked (ticket 0 consumed).
	a := NewOnline(typ, 2)
	_ = a.Invoke(0, fi())
	_ = a.Return(0, "0")
	_ = a.Invoke(1, fi())
	// Run B: p1's op overlaps a still-pending p0 op... different futures.
	b := NewOnline(typ, 2)
	_ = b.Invoke(0, fi())
	_ = b.Invoke(1, fi())
	if a.Key() == b.Key() {
		t.Fatal("config keys must distinguish committed from uncommitted tickets")
	}
	// Two identical event sequences must agree exactly.
	c := NewOnline(typ, 2)
	_ = c.Invoke(0, fi())
	_ = c.Return(0, "0")
	_ = c.Invoke(1, fi())
	if a.Key() != c.Key() {
		t.Fatalf("identical histories disagree:\n%s\n%s", a.Key(), c.Key())
	}
}

// TestOnlineMatchesCheckOnRandomHistories cross-validates the two
// checkers: for random completed histories (valid and invalid), the
// online verdict after the last event must equal Check's post-hoc
// verdict on the same history with event-index timestamps.
func TestOnlineMatchesCheckOnRandomHistories(t *testing.T) {
	typ := objtype.NewFetchIncrement(8)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(2)
		opsPer := 1 + rng.Intn(2)
		type ev struct {
			proc   int
			invoke bool
			resp   objtype.Value
		}
		// Build a random valid event order: per process, invoke/return
		// alternate; globally interleaved at random; responses random
		// tickets (often inconsistent — that is the point).
		var events []ev
		left := make([]int, n)
		pending := make([]bool, n)
		for i := range left {
			left[i] = opsPer
		}
		for {
			cands := []int{}
			for p := 0; p < n; p++ {
				if pending[p] || left[p] > 0 {
					cands = append(cands, p)
				}
			}
			if len(cands) == 0 {
				break
			}
			p := cands[rng.Intn(len(cands))]
			if pending[p] {
				events = append(events, ev{proc: p, resp: objtype.HexUint(uint64(rng.Intn(n*opsPer + 1)))})
				pending[p] = false
			} else {
				events = append(events, ev{proc: p, invoke: true})
				pending[p] = true
				left[p]--
			}
		}
		o := NewOnline(typ, n)
		h := NewHistory(n)
		invokeAt := make([]int64, n)
		for i, e := range events {
			ts := int64(i + 1)
			if e.invoke {
				if err := o.Invoke(e.proc, fi()); err != nil {
					t.Fatal(err)
				}
				invokeAt[e.proc] = ts
			} else {
				if err := o.Return(e.proc, e.resp); err != nil {
					t.Fatal(err)
				}
				h.Add(e.proc, fi(), e.resp, invokeAt[e.proc], ts)
			}
		}
		res, err := Check(typ, h)
		if err != nil {
			t.Fatal(err)
		}
		if res.Linearizable != o.Ok() {
			t.Fatalf("trial %d: Check says %v, Online says %v (events %+v)", trial, res.Linearizable, o.Ok(), events)
		}
	}
}
