// Online incremental linearizability checking, in the style of Lowe's
// just-in-time linearization: instead of checking a completed history
// post-hoc (Check), an Online checker consumes invoke/return events as
// they happen and maintains the set of all "configurations" — pairs of
// (sequential object state, set of pending operations already linearized
// with their forced responses) — consistent with the events so far.
//
// The config set is a pure function of the event sequence, so it serves
// two purposes for the schedule-exploration harness (package explore):
//
//  1. Early, exact detection: the history seen so far is linearizable
//     iff the config set is non-empty, so a violation is flagged at the
//     precise return event that makes the history inconsistent — no need
//     to run the schedule to completion.
//
//  2. Sound state memoization: two schedule prefixes that agree on
//     machine states and memory contents can still differ in which
//     real-time orders their histories admit. The canonical Key of the
//     config set captures exactly that residue, so folding it into a
//     memoization key makes pruning complete for linearizability: equal
//     keys (together with equal machine histories and memory) imply that
//     every schedule suffix produces a violation from one prefix iff it
//     does from the other.
package linz

import (
	"fmt"
	"sort"
	"strings"

	"jayanti98/internal/objtype"
	"jayanti98/internal/shmem"
)

// onlineConfigCap bounds the config set; exceeding it reports an error
// rather than silently degrading. With p pending operations the set holds
// at most (p+1)! configurations over distinct states, so small-n
// exploration (the intended use) stays far below the cap.
const onlineConfigCap = 1 << 16

// Online is an incremental linearizability checker for one concurrent
// object. Feed it Invoke/Return events in the real-time order they occur;
// Ok reports whether the history so far is linearizable. Not safe for
// concurrent use.
type Online struct {
	typ       objtype.Type
	n         int
	pending   map[int]objtype.Op // proc -> its one outstanding op
	configs   map[string]onlineConfig
	events    int
	violation string
}

// onlineConfig is one consistent hypothesis: the sequential state after
// the operations linearized so far, plus the pending operations among
// them with the responses the specification forced at their
// linearization points.
type onlineConfig struct {
	state objtype.Value
	lin   map[int]objtype.Value
}

func renderConfig(c onlineConfig) string {
	procs := make([]int, 0, len(c.lin))
	for p := range c.lin {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	var b strings.Builder
	fmt.Fprintf(&b, "%v", c.state)
	for _, p := range procs {
		fmt.Fprintf(&b, "|p%d=%v", p, c.lin[p])
	}
	return b.String()
}

// NewOnline creates a checker for an n-process object of the given type.
func NewOnline(typ objtype.Type, n int) *Online {
	o := &Online{
		typ:     typ,
		n:       n,
		pending: make(map[int]objtype.Op),
		configs: make(map[string]onlineConfig),
	}
	init := onlineConfig{state: typ.Init(n), lin: map[int]objtype.Value{}}
	o.configs[renderConfig(init)] = init
	return o
}

// Invoke records that proc invoked op. It errors on protocol misuse (a
// second outstanding op for the same process), never on inconsistency —
// that is Ok's job.
func (o *Online) Invoke(proc int, op objtype.Op) error {
	if _, dup := o.pending[proc]; dup {
		return fmt.Errorf("linz: online: process %d invoked %v with an operation already outstanding", proc, op)
	}
	o.events++
	o.pending[proc] = op
	return o.closure()
}

// Return records that proc's outstanding op responded with resp. If no
// configuration survives, the history has just become non-linearizable;
// Ok turns false and Violation pinpoints this event.
func (o *Online) Return(proc int, resp objtype.Value) error {
	op, ok := o.pending[proc]
	if !ok {
		return fmt.Errorf("linz: online: process %d returned %v with no outstanding operation", proc, resp)
	}
	o.events++
	next := make(map[string]onlineConfig, len(o.configs))
	for _, c := range o.configs {
		if fixed, lin := c.lin[proc]; lin {
			// Linearized earlier; the forced response must match.
			if shmem.ValuesEqual(fixed, resp) {
				c2 := onlineConfig{state: c.state, lin: withoutProc(c.lin, proc)}
				next[renderConfig(c2)] = c2
			}
			continue
		}
		// Linearize at the return point. Configs where other pending ops
		// linearize first are already present (the set is closed), so
		// this covers every legal order.
		st, r := o.typ.Apply(c.state, op)
		if shmem.ValuesEqual(r, resp) {
			c2 := onlineConfig{state: st, lin: c.lin}
			next[renderConfig(c2)] = c2
		}
	}
	delete(o.pending, proc)
	o.configs = next
	if len(o.configs) == 0 && o.violation == "" {
		o.violation = fmt.Sprintf("event %d: response %v of p%d's %v admits no linearization", o.events, resp, proc, op)
	}
	return o.closure()
}

// closure extends configs with every configuration reachable by
// linearizing pending-but-unlinearized operations, in any order.
func (o *Online) closure() error {
	queue := make([]onlineConfig, 0, len(o.configs))
	for _, c := range o.configs {
		queue = append(queue, c)
	}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for proc, op := range o.pending {
			if _, done := c.lin[proc]; done {
				continue
			}
			st, r := o.typ.Apply(c.state, op)
			lin := make(map[int]objtype.Value, len(c.lin)+1)
			for p, v := range c.lin {
				lin[p] = v
			}
			lin[proc] = r
			c2 := onlineConfig{state: st, lin: lin}
			k := renderConfig(c2)
			if _, seen := o.configs[k]; !seen {
				if len(o.configs) >= onlineConfigCap {
					return fmt.Errorf("linz: online: config set exceeded %d entries (history too concurrent for online checking)", onlineConfigCap)
				}
				o.configs[k] = c2
				queue = append(queue, c2)
			}
		}
	}
	return nil
}

func withoutProc(lin map[int]objtype.Value, proc int) map[int]objtype.Value {
	out := make(map[int]objtype.Value, len(lin))
	for p, v := range lin {
		if p != proc {
			out[p] = v
		}
	}
	return out
}

// Ok reports whether the event sequence consumed so far is linearizable
// (pending operations may take effect or not — exactly Check's pending
// semantics).
func (o *Online) Ok() bool { return len(o.configs) > 0 }

// Violation describes the first inconsistent event, or "" while Ok.
func (o *Online) Violation() string { return o.violation }

// Events returns the number of events consumed.
func (o *Online) Events() int { return o.events }

// Key returns a canonical rendering of the config set. Histories with
// equal Keys (and equal pending-operation sets, which the caller's state
// already determines) are interchangeable for every future event
// sequence: the explorer folds Key into its memoization state.
func (o *Online) Key() string {
	keys := make([]string, 0, len(o.configs))
	for k := range o.configs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "&")
}
