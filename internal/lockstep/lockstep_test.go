package lockstep

import (
	"fmt"
	"strings"
	"testing"

	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
	"jayanti98/internal/wakeup"
)

// constructions returns a fresh instance of every compiled algorithm; each
// instance shares the package-level chunk of its construction.
func constructions() []machine.Algorithm {
	return []machine.Algorithm{
		wakeup.SetRegister(),
		wakeup.DoubleRegister(),
		wakeup.Cheater(),
		wakeup.MoveCourier(),
	}
}

// bitToss derives toss outcomes from a seed: process p's j-th toss is bit
// p+3j of the seed. At n ≤ 3 and one toss per process (the compiled
// constructions toss at most once), seeds 0..2^n−1 enumerate every
// assignment of first tosses.
func bitToss(seed uint64) machine.TossAssignment {
	return func(pid, j int) int64 {
		return int64((seed >> (uint(pid) + 3*uint(j))) & 1)
	}
}

// TestExhaustiveEquivalence is the tentpole acceptance test: for every
// compiled construction, at n ∈ {2, 3}, explore every schedule in lockstep
// on both engines, verifying every observable at every step. At n=2 every
// toss assignment of the first tosses is explored; at n=3 the all-zeros
// and alternating assignments (the two that diverge DoubleRegister's
// register choices) keep the state count tractable.
func TestExhaustiveEquivalence(t *testing.T) {
	type tc struct {
		alg   machine.Algorithm
		n     int
		seeds []uint64
	}
	var cases []tc
	for _, alg := range constructions() {
		cases = append(cases,
			tc{alg, 2, []uint64{0, 1, 2, 3}},
			tc{alg, 3, []uint64{0, 0b101}},
		)
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/n=%d", strings.TrimPrefix(c.alg.Name(), "wakeup/"), c.n), func(t *testing.T) {
			t.Parallel()
			for _, seed := range c.seeds {
				stats, err := Exhaustive(c.alg, c.n, bitToss(seed), 64)
				if err != nil {
					t.Fatalf("toss seed %b: %v", seed, err)
				}
				if stats.States == 0 || stats.Runs == 0 {
					t.Fatalf("toss seed %b: degenerate exploration: %+v", seed, stats)
				}
				t.Logf("toss seed %b: states=%d runs=%d maxDepth=%d", seed, stats.States, stats.Runs, stats.MaxDepth)
			}
		})
	}
}

// TestRunSchedules drives each construction at n=4 through round-robin,
// sequential, and skewed schedules, asserting completion without
// divergence.
func TestRunSchedules(t *testing.T) {
	schedules := map[string]func(n, steps int) []int{
		"round-robin": func(n, steps int) []int {
			s := make([]int, steps)
			for i := range s {
				s[i] = i % n
			}
			return s
		},
		"sequential-ish": func(n, steps int) []int {
			s := make([]int, steps)
			for i := range s {
				s[i] = (i * n) / steps
			}
			return s
		},
		"adversarial-skew": func(n, steps int) []int {
			s := make([]int, steps)
			for i := range s {
				if i%3 == 0 {
					s[i] = 0
				} else {
					s[i] = 1 + (i % (n - 1))
				}
			}
			return s
		},
	}
	const n = 4
	for _, alg := range constructions() {
		for name, mk := range schedules {
			t.Run(strings.TrimPrefix(alg.Name(), "wakeup/")+"/"+name, func(t *testing.T) {
				steps, err := Run(alg, n, mk(n, 200), bitToss(0b0110))
				if err != nil {
					t.Fatal(err)
				}
				if steps == 0 {
					t.Fatal("schedule advanced no steps")
				}
			})
		}
	}
}

// TestRMWInterleaved interleaves adversary-style RMW mutations (the
// Section 7 extra operation) with lockstep steps: both memories receive
// identical RMWs, and the harness must still see identical responses,
// digests and register files — including the step accounting RMW charges.
func TestRMWInterleaved(t *testing.T) {
	p, err := NewPair(wakeup.SetRegister(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	gmem, vmem := p.Memories()
	rmw := func(pid, reg int) {
		f := func(v shmem.Value) shmem.Value {
			if s, ok := v.(string); ok {
				return s // identity on the value, but clears the Pset
			}
			return v
		}
		gprev := gmem.RMW(pid, reg, f)
		vprev := vmem.RMW(pid, reg, f)
		if !shmem.ValuesEqual(gprev, vprev) {
			t.Fatalf("RMW previous values diverged: %v vs %v", gprev, vprev)
		}
	}
	// Step all three processes with an RMW wedged between every step; the
	// Pset-clearing RMW forces SC failures and extra retry iterations,
	// identically on both engines.
	for i := 0; !p.AllTerminal(); i++ {
		if i > 500 {
			t.Fatal("run did not terminate")
		}
		pid := i % 3
		if p.Terminal(pid) {
			continue
		}
		if _, err := p.Step(pid, machine.ZeroTosses); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			rmw(pid, 0)
		}
	}
	// RMW charges one step to the acting process on both memories.
	for pid := 0; pid < 3; pid++ {
		if g, v := gmem.Steps(pid), vmem.Steps(pid); g != v {
			t.Fatalf("memory step accounting diverged for pid %d: %d vs %d", pid, g, v)
		}
	}
}

// TestNewPairRejectsUncompiled: a plain interpreted algorithm has no chunk,
// so a lockstep comparison would be vacuous — NewPair must refuse it.
func TestNewPairRejectsUncompiled(t *testing.T) {
	alg := machine.New("plain", func(e *machine.Env) shmem.Value { return 0 })
	if _, err := NewPair(alg, 2); err == nil {
		t.Fatal("NewPair accepted an uncompiled algorithm")
	}
}

// TestMismatchRendering pins the error shape surfaced to failing tests.
func TestMismatchRendering(t *testing.T) {
	err := &Mismatch{Alg: "wakeup/x", N: 2, Pid: 1, Step: 7, Field: "digest", Goro: "a", VM: "b"}
	for _, want := range []string{"wakeup/x", "step 7", "pid 1", "digest", "goroutine: a", "vm:        b"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Mismatch error %q missing %q", err.Error(), want)
		}
	}
}
