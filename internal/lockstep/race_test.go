package lockstep

import (
	"fmt"
	"testing"

	"jayanti98/internal/machine"
	"jayanti98/internal/sched"
	"jayanti98/internal/shmem"
	"jayanti98/internal/sweep"
)

// TestChunksSharedAcrossGoroutines steps many VM machines concurrently
// through the sweep worker pool, every fleet executing the same four
// package-level compiled chunks. Under -race this proves the chunks are
// safely shared read-only: an Exec's mutable state is private, and nothing
// in the VM hot path writes to the chunk.
func TestChunksSharedAcrossGoroutines(t *testing.T) {
	// One algorithm instance per construction, shared by every task, so
	// all workers hit the same *vmachine.Chunk pointers.
	algs := constructions()
	const tasks = 64
	const n = 6
	_, err := sweep.Map(8, tasks, func(i int) (int, error) {
		alg := algs[i%len(algs)]
		ms := machine.StartAllEngine(alg, n, machine.EngineVM)
		defer machine.CloseAll(ms)
		if got := ms[0].EngineName(); got != "vm" {
			return 0, fmt.Errorf("task %d: engine %q, want vm", i, got)
		}
		mem := shmem.New()
		toss := func(pid, j int) int64 { return int64(mix64(uint64(i)^uint64(pid)^uint64(j)<<16) & 1) }
		steps := 0
		for round := 0; ; round++ {
			if round > 10_000 {
				return 0, fmt.Errorf("task %d: fleet did not terminate", i)
			}
			live := 0
			for pid := 0; pid < n; pid++ {
				m := ms[pid]
				if m.Terminated() || m.Crashed() != nil {
					continue
				}
				live++
				switch a := m.Peek(); a.Kind {
				case machine.ActToss:
					m.DeliverToss(toss(pid, m.NumTosses()))
				case machine.ActOp:
					m.DeliverOpResponse(mem.Apply(pid, a.Op))
					steps++
				}
			}
			if live == 0 {
				return steps, nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentLockstepPairs runs full lockstep pairs concurrently — two
// engines, two memories per worker, all sharing chunks — under the sched
// executor's round-robin order reproduced as an explicit schedule.
func TestConcurrentLockstepPairs(t *testing.T) {
	algs := constructions()
	const tasks = 32
	_, err := sweep.Map(8, tasks, func(i int) (int, error) {
		alg := algs[i%len(algs)]
		n := 2 + i%3
		schedule := make([]int, 120)
		rr := &sched.RoundRobin{}
		live := make([]int, n)
		for p := range live {
			live[p] = p
		}
		for s := range schedule {
			schedule[s] = rr.Next(s, live)
		}
		steps, err := Run(alg, n, schedule, bitToss(uint64(i)))
		if err != nil {
			return 0, fmt.Errorf("task %d: %w", i, err)
		}
		return steps, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
