package lockstep

import (
	"fmt"

	"jayanti98/internal/machine"
)

// Stats summarizes an exhaustive lockstep exploration.
type Stats struct {
	// States is the number of distinct product states visited (memoized on
	// Pair.StateKey).
	States int
	// Runs is the number of complete runs reached (every process terminal).
	Runs int
	// MaxDepth is the length of the longest schedule explored.
	MaxDepth int
	// Truncated counts schedules cut off at the depth limit with processes
	// still live. Always 0 under Exhaustive (which treats hitting the limit
	// as an error); only ExhaustiveBounded produces nonzero counts.
	Truncated int
}

// Exhaustive explores every schedule of alg at system size n under the
// given toss assignment, in lockstep on both engines, pruning product
// states already visited. Every node replays its schedule prefix from a
// fresh pair, so each of the O(states × depth) steps re-runs the full
// per-step verification of Pair.Step; two prefixes reaching the same
// StateKey have identical futures under identical schedule suffixes, so
// pruning loses no coverage.
//
// depthLimit bounds schedule length as a runaway guard: the compiled
// algorithms are wait-free with O(n) steps per process, so hitting the
// limit means a non-terminating schedule — reported as an error, never
// silently truncated.
func Exhaustive(alg machine.Algorithm, n int, toss machine.TossAssignment, depthLimit int) (Stats, error) {
	return exhaust(alg, n, toss, depthLimit, false)
}

// ExhaustiveBounded is Exhaustive for algorithms that are not wait-free:
// the randomized protocols of the algorithm zoo (internal/algos) can run
// forever under an adversarial schedule, so a schedule reaching depthLimit
// is expected — it is counted in Stats.Truncated and the search backs off,
// instead of failing. Engine equivalence is still verified on every step of
// every explored prefix, truncated or not.
func ExhaustiveBounded(alg machine.Algorithm, n int, toss machine.TossAssignment, depthLimit int) (Stats, error) {
	return exhaust(alg, n, toss, depthLimit, true)
}

func exhaust(alg machine.Algorithm, n int, toss machine.TossAssignment, depthLimit int, truncate bool) (Stats, error) {
	x := &explorer{
		alg:        alg,
		n:          n,
		toss:       toss,
		depthLimit: depthLimit,
		truncate:   truncate,
		memo:       make(map[string]bool),
	}
	if err := x.expand(nil); err != nil {
		return x.stats, err
	}
	return x.stats, nil
}

type explorer struct {
	alg        machine.Algorithm
	n          int
	toss       machine.TossAssignment
	depthLimit int
	truncate   bool
	memo       map[string]bool
	stats      Stats
}

// expand replays prefix from scratch (verifying every step), then — if the
// resulting state is new — recurses on every enabled process.
func (x *explorer) expand(prefix []int) error {
	p, err := NewPair(x.alg, x.n)
	if err != nil {
		return err
	}
	defer p.Close()
	for i, pid := range prefix {
		advanced, err := p.Step(pid, x.toss)
		if err != nil {
			return err
		}
		if !advanced {
			return fmt.Errorf("lockstep: %s n=%d: replay of %v stalled at index %d", x.alg.Name(), x.n, prefix, i)
		}
	}
	key := p.StateKey()
	if x.memo[key] {
		return nil
	}
	x.memo[key] = true
	x.stats.States++
	if len(prefix) > x.stats.MaxDepth {
		x.stats.MaxDepth = len(prefix)
	}
	if p.AllTerminal() {
		x.stats.Runs++
		return nil
	}
	if len(prefix) >= x.depthLimit {
		if x.truncate {
			x.stats.Truncated++
			return nil
		}
		return fmt.Errorf("lockstep: %s n=%d: schedule %v reached depth limit %d without terminating", x.alg.Name(), x.n, prefix, x.depthLimit)
	}
	for pid := 0; pid < x.n; pid++ {
		if p.Terminal(pid) {
			continue
		}
		if err := x.expand(append(prefix, pid)); err != nil {
			return err
		}
	}
	return nil
}
