package lockstep

import (
	"testing"
)

// mix64 is splitmix64's finalizer — a cheap, well-distributed way to derive
// toss outcomes from (seed, pid, j) without any shared state.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FuzzVMEquivalence is the differential fuzz target: the fuzzer picks a
// construction, a system size, a toss seed and an arbitrary schedule, and
// the lockstep harness asserts the two engines agree on every observable
// at every step. Any counterexample the fuzzer ever finds is a real
// compiler or VM bug, minimized to a replayable schedule.
func FuzzVMEquivalence(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint64(0), []byte{0, 1, 0, 1, 0, 1, 0, 1})
	f.Add(uint8(1), uint8(1), uint64(7), []byte{2, 0, 1, 2, 2, 0, 1, 1, 0, 2})
	f.Add(uint8(2), uint8(2), uint64(42), []byte{0, 0, 0, 3, 2, 1})
	f.Add(uint8(3), uint8(1), uint64(9), []byte{1, 1, 1, 1, 0, 2, 0, 2, 0, 1, 2})
	f.Fuzz(func(t *testing.T, algIdx, nRaw uint8, tossSeed uint64, sched []byte) {
		algs := constructions()
		alg := algs[int(algIdx)%len(algs)]
		n := 2 + int(nRaw)%3 // n ∈ {2, 3, 4}
		if len(sched) > 512 {
			sched = sched[:512]
		}
		schedule := make([]int, len(sched))
		for i, b := range sched {
			schedule[i] = int(b) % n
		}
		toss := func(pid, j int) int64 {
			return int64(mix64(tossSeed^uint64(pid)<<32^uint64(j)) & 1)
		}
		if _, err := Run(alg, n, schedule, toss); err != nil {
			t.Fatal(err)
		}
	})
}
