// Package lockstep is the differential-testing harness that proves the two
// machine engines equivalent: it runs a goroutine-engine fleet and a
// VM-engine fleet of the same compiled algorithm over the same schedule,
// against two independent shared memories, and asserts after every single
// step that everything observable matches — pending actions, memory
// responses, history digests, step and toss counts, register-file
// fingerprints, terminal status and return values.
//
// The harness runs in three modes: Run replays one explicit schedule
// (driven directly by tests and by the FuzzVMEquivalence fuzz target);
// Exhaustive explores every schedule of a system up to memoized state
// equality (run at n ∈ {2, 3} for every compiled construction); and the
// race stress test steps many independent pairs concurrently to prove
// compiled chunks are safely shared read-only.
//
// Equivalence here is the operational form of the statement that an
// Algorithm and its compiled chunk denote the same process automaton: if
// the two engines emitted different actions anywhere, the adversary of
// Section 5 could distinguish them, and every theorem measured on one
// engine would be meaningless on the other.
package lockstep

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

// Mismatch reports the first observable divergence between the two engines.
type Mismatch struct {
	Alg   string // algorithm name
	N     int    // system size
	Pid   int    // process being stepped when the divergence surfaced
	Step  int    // 0-based index into the schedule
	Field string // what diverged ("action", "response", "digest", ...)
	Goro  string // goroutine-engine observation
	VM    string // vm-engine observation
}

func (e *Mismatch) Error() string {
	return fmt.Sprintf("lockstep: %s n=%d: step %d (pid %d): %s diverged:\n  goroutine: %s\n  vm:        %s",
		e.Alg, e.N, e.Step, e.Pid, e.Field, e.Goro, e.VM)
}

// Pair is a goroutine-engine fleet and a VM-engine fleet of the same
// algorithm, advanced in lockstep. Always Close a Pair.
type Pair struct {
	alg  machine.Algorithm
	n    int
	gms  []*machine.Machine
	vms  []*machine.Machine
	gmem *shmem.Memory
	vmem *shmem.Memory
	step int
}

// NewPair starts both fleets. The algorithm must be compiled
// (machine.Compiled); otherwise the "VM" fleet would silently fall back to
// the goroutine engine and the comparison would be vacuous.
func NewPair(alg machine.Algorithm, n int) (*Pair, error) {
	if _, ok := alg.(machine.Compiled); !ok {
		return nil, fmt.Errorf("lockstep: %s is not a compiled algorithm", alg.Name())
	}
	p := &Pair{
		alg:  alg,
		n:    n,
		gms:  machine.StartAllEngine(alg, n, machine.EngineGoroutine),
		vms:  machine.StartAllEngine(alg, n, machine.EngineVM),
		gmem: shmem.New(),
		vmem: shmem.New(),
	}
	for pid := 0; pid < n; pid++ {
		if got := p.gms[pid].EngineName(); got != "goroutine" {
			p.Close()
			return nil, fmt.Errorf("lockstep: %s: reference fleet on engine %q", alg.Name(), got)
		}
		if got := p.vms[pid].EngineName(); got != "vm" {
			p.Close()
			return nil, fmt.Errorf("lockstep: %s: subject fleet on engine %q", alg.Name(), got)
		}
	}
	return p, nil
}

// Close releases both fleets.
func (p *Pair) Close() {
	machine.CloseAll(p.gms)
	machine.CloseAll(p.vms)
}

// Memories exposes the two register files (goroutine-fleet, VM-fleet) so
// tests can interleave external mutations — the adversary's RMW of
// Section 7 — on both sides identically.
func (p *Pair) Memories() (goro, vm *shmem.Memory) { return p.gmem, p.vmem }

// Terminal reports whether process pid has returned or crashed (the two
// fleets are step-identical, so asking either is asking both).
func (p *Pair) Terminal(pid int) bool {
	return p.gms[pid].Terminated() || p.gms[pid].Crashed() != nil
}

// AllTerminal reports whether every process has returned or crashed.
func (p *Pair) AllTerminal() bool {
	for pid := 0; pid < p.n; pid++ {
		if !p.Terminal(pid) {
			return false
		}
	}
	return true
}

func (p *Pair) mismatch(pid int, field, goro, vm string) error {
	return &Mismatch{Alg: p.alg.Name(), N: p.n, Pid: pid, Step: p.step, Field: field, Goro: goro, VM: vm}
}

// Step advances process pid one step in both fleets, verifying every
// observable along the way. Stepping a terminal process verifies terminal
// agreement and reports advanced=false.
func (p *Pair) Step(pid int, toss machine.TossAssignment) (advanced bool, err error) {
	gm, vm := p.gms[pid], p.vms[pid]
	ga, va := gm.Peek(), vm.Peek()
	if ga.Kind != va.Kind {
		return false, p.mismatch(pid, "action kind", ga.Kind.String(), va.Kind.String())
	}
	switch ga.Kind {
	case machine.ActToss:
		outcome := toss(pid, gm.NumTosses())
		gm.DeliverToss(outcome)
		vm.DeliverToss(outcome)
	case machine.ActOp:
		if ga.Op.String() != va.Op.String() || !shmem.ValuesEqual(ga.Op.Arg, va.Op.Arg) {
			return false, p.mismatch(pid, "operation", ga.Op.String(), va.Op.String())
		}
		gr := p.gmem.Apply(pid, ga.Op)
		vr := p.vmem.Apply(pid, va.Op)
		if gr.OK != vr.OK || !shmem.ValuesEqual(gr.Val, vr.Val) {
			return false, p.mismatch(pid, "response", gr.String(), vr.String())
		}
		gm.DeliverOpResponse(gr)
		vm.DeliverOpResponse(vr)
	case machine.ActReturn, machine.ActCrash:
		if err := p.verifyTerminal(pid); err != nil {
			return false, err
		}
		return false, p.verifyState(pid)
	}
	p.step++
	// Settle: peek the next action on both sides. This absorbs a final
	// return/crash into the machines' terminal state (so Terminal is
	// accurate immediately after the step) and pins the next pending
	// action kind while we are at it.
	if gn, vn := gm.Peek(), vm.Peek(); gn.Kind != vn.Kind {
		return true, p.mismatch(pid, "post-step action kind", gn.Kind.String(), vn.Kind.String())
	}
	return true, p.verifyState(pid)
}

// verifyState compares every per-process observable and the two register
// files after a step of pid.
func (p *Pair) verifyState(pid int) error {
	for q := 0; q < p.n; q++ {
		gm, vm := p.gms[q], p.vms[q]
		if g, v := gm.HistoryKey(), vm.HistoryKey(); g != v {
			return p.mismatch(q, "history digest", g, v)
		}
		if g, v := gm.Steps(), vm.Steps(); g != v {
			return p.mismatch(q, "step count", fmt.Sprint(g), fmt.Sprint(v))
		}
		if g, v := gm.NumTosses(), vm.NumTosses(); g != v {
			return p.mismatch(q, "toss count", fmt.Sprint(g), fmt.Sprint(v))
		}
	}
	gfp := p.gmem.AppendFingerprint(nil)
	vfp := p.vmem.AppendFingerprint(nil)
	if !bytes.Equal(gfp, vfp) {
		return p.mismatch(pid, "register file", fmt.Sprintf("%x", gfp), fmt.Sprintf("%x", vfp))
	}
	return p.verifyTerminal(pid)
}

// verifyTerminal compares terminal status, return values and crash messages
// for process pid.
func (p *Pair) verifyTerminal(pid int) error {
	gm, vm := p.gms[pid], p.vms[pid]
	if g, v := gm.Terminated(), vm.Terminated(); g != v {
		return p.mismatch(pid, "terminated", fmt.Sprint(g), fmt.Sprint(v))
	}
	gc, vc := gm.Crashed(), vm.Crashed()
	if (gc == nil) != (vc == nil) || (gc != nil && gc.Error() != vc.Error()) {
		return p.mismatch(pid, "crash", fmt.Sprint(gc), fmt.Sprint(vc))
	}
	if gm.Terminated() {
		if g, v := gm.ReturnValue(), vm.ReturnValue(); !shmem.ValuesEqual(g, v) {
			return p.mismatch(pid, "return value", fmt.Sprintf("%T(%v)", g, g), fmt.Sprintf("%T(%v)", v, v))
		}
	}
	return nil
}

// StateKey returns a compact binary key of the pair's product state:
// per-process history digests and toss counts plus the register-file
// fingerprint. Step verification has already pinned the VM side to the
// goroutine side, so the key only encodes the reference fleet. Exhaustive
// uses it to prune revisited states.
func (p *Pair) StateKey() string {
	var b []byte
	for _, m := range p.gms {
		ev, sum, _ := m.HistoryDigest()
		b = binary.AppendUvarint(b, uint64(ev))
		b = binary.LittleEndian.AppendUint64(b, sum)
		b = binary.AppendUvarint(b, uint64(m.NumTosses()))
	}
	return string(p.gmem.AppendFingerprint(b))
}

// Run replays one schedule from a fresh pair: schedule[i] is the pid to
// step at time i; steps aimed at terminal processes verify terminal
// agreement and are otherwise skipped. It returns the number of steps that
// actually advanced and the first divergence, if any.
func Run(alg machine.Algorithm, n int, schedule []int, toss machine.TossAssignment) (steps int, err error) {
	p, err := NewPair(alg, n)
	if err != nil {
		return 0, err
	}
	defer p.Close()
	for _, pid := range schedule {
		if pid < 0 || pid >= n {
			return steps, fmt.Errorf("lockstep: schedule pid %d out of range [0,%d)", pid, n)
		}
		advanced, err := p.Step(pid, toss)
		if err != nil {
			return steps, err
		}
		if advanced {
			steps++
		}
	}
	return steps, nil
}
