package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// memCheckpointer is an in-memory Checkpointer for manager tests.
type memCheckpointer struct {
	mu   sync.Mutex
	data map[string][]byte
}

func newMemCheckpointer() *memCheckpointer {
	return &memCheckpointer{data: make(map[string][]byte)}
}

func (m *memCheckpointer) PutCheckpoint(id string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[id] = append([]byte(nil), data...)
	return nil
}

func (m *memCheckpointer) GetCheckpoint(id string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.data[id]
	return data, ok
}

func boundedSpec(rounds int) *Spec {
	s := testSpec()
	s.MaxRounds = rounds
	return s
}

func waitTerminal(t *testing.T, m *Manager, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("campaign %s vanished", id)
		}
		if v.Status.Terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached a terminal state", id)
	return View{}
}

func TestManagerBoundedCampaign(t *testing.T) {
	ck := newMemCheckpointer()
	m := NewManager(ManagerOptions{Executor: &LocalExecutor{Parallel: 2}, Checkpointer: ck})
	view, created, err := m.Start(boundedSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if !created || view.Status != CampaignRunning {
		t.Fatalf("start: created=%v status=%s", created, view.Status)
	}

	// Restarting the same spec while running attaches, never forks.
	again, created, err := m.Start(boundedSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if created || again.ID != view.ID {
		t.Fatalf("resubmit forked: created=%v id=%s vs %s", created, again.ID, view.ID)
	}

	final := waitTerminal(t, m, view.ID)
	if final.Status != CampaignDone {
		t.Fatalf("status = %s (%s), want done", final.Status, final.Error)
	}
	if final.Rounds != 3 || final.Execs != int64(3*16) {
		t.Fatalf("rounds=%d execs=%d", final.Rounds, final.Execs)
	}
	if final.CorpusSize == 0 || final.CoverageSize == 0 {
		t.Fatalf("no coverage accumulated: %+v", final)
	}

	// The manager's result matches the serial reference run.
	ref := runRounds(t, boundedSpec(3), 3, 1)
	if final.CorpusDigest != ref.Corpus.Digest() {
		t.Fatal("manager corpus diverged from the serial reference")
	}

	// The final checkpoint captured the terminal state.
	data, ok := ck.GetCheckpoint(view.ID)
	if !ok {
		t.Fatal("no final checkpoint")
	}
	st, err := DecodeState(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Round != 3 || st.Corpus.Digest() != ref.Corpus.Digest() {
		t.Fatalf("checkpoint state: round=%d", st.Round)
	}

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestManagerResumeFromCheckpoint simulates a server restart: a second
// manager sharing the checkpointer resumes the campaign and lands on the
// same final state as an uninterrupted run.
func TestManagerResumeFromCheckpoint(t *testing.T) {
	ck := newMemCheckpointer()
	m1 := NewManager(ManagerOptions{Executor: &LocalExecutor{Parallel: 2}, Checkpointer: ck})
	spec := boundedSpec(2)
	view, _, err := m1.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m1, view.ID)
	if err := m1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh manager, same checkpointer, continue to round 4.
	m2 := NewManager(ManagerOptions{Executor: &LocalExecutor{Parallel: 2}, Checkpointer: ck})
	// Resume relaunches the checkpointed campaign; it is already at its
	// MaxRounds bound, so it terminates immediately without re-running.
	resumed, err := m2.Resume(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ID != view.ID {
		t.Fatalf("resumed a different campaign: %s", resumed.ID)
	}
	final := waitTerminal(t, m2, view.ID)
	if final.Rounds != 2 {
		t.Fatalf("resumed campaign re-ran rounds: %d", final.Rounds)
	}

	// A longer campaign run entirely under the manager matches the serial
	// reference (TestCheckpointRoundTrip proves the state algebra; this
	// proves the manager wiring preserves it).
	longView, _, err := m2.Start(boundedSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	longFinal := waitTerminal(t, m2, longView.ID)
	ref := runRounds(t, boundedSpec(4), 4, 1)
	if longFinal.CorpusDigest != ref.Corpus.Digest() {
		t.Fatal("4-round managed campaign diverged from serial reference")
	}
	if err := m2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestManagerStopAndRestart(t *testing.T) {
	ck := newMemCheckpointer()
	m := NewManager(ManagerOptions{Executor: &LocalExecutor{Parallel: 2}, Checkpointer: ck})
	view, _, err := m.Start(testSpec()) // unbounded: runs until stopped
	if err != nil {
		t.Fatal(err)
	}
	// Let it make some progress, then stop it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, _ := m.Get(view.ID)
		if v.Rounds >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopped, ok := m.Stop(view.ID)
	if !ok {
		t.Fatal("Stop: unknown id")
	}
	if stopped.Status != CampaignStopped {
		t.Fatalf("status after stop = %s", stopped.Status)
	}
	if _, ok := ck.GetCheckpoint(view.ID); !ok {
		t.Fatal("stop did not checkpoint")
	}
	// Stop is idempotent on terminal campaigns.
	if again, ok := m.Stop(view.ID); !ok || again.Status != CampaignStopped {
		t.Fatalf("second stop: ok=%v status=%s", ok, again.Status)
	}
	// Start on the stopped campaign restarts it from its state.
	restarted, created, err := m.Start(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if created || restarted.Status != CampaignRunning {
		t.Fatalf("restart: created=%v status=%s", created, restarted.Status)
	}
	if restarted.Rounds < stopped.Rounds {
		t.Fatalf("restart lost progress: %d < %d", restarted.Rounds, stopped.Rounds)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Start(testSpec()); err != ErrShuttingDown {
		t.Fatalf("Start after Shutdown: %v", err)
	}
}

func TestCampaignHTTP(t *testing.T) {
	m := NewManager(ManagerOptions{Executor: &LocalExecutor{Parallel: 2}, Checkpointer: newMemCheckpointer()})
	defer m.Shutdown(context.Background())
	mux := http.NewServeMux()
	RegisterRoutes(mux, m)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	post := func(body string) (*http.Response, View) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var v View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, v
	}

	spec := `{"alg":"group-update","n":2,"batchSize":8,"maxRounds":2}`
	resp, v := post(spec)
	if resp.StatusCode != http.StatusCreated || v.ID == "" {
		t.Fatalf("POST: %d %+v", resp.StatusCode, v)
	}
	if resp, _ := post(spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent POST: %d, want 200", resp.StatusCode)
	}
	if resp, _ := post(`{"alg":"bogus"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d", resp.StatusCode)
	}
	if resp, _ := post(`{"stray":"field"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", resp.StatusCode)
	}

	waitTerminal(t, m, v.ID)

	// List elides findings but shows the campaign.
	lresp, err := http.Get(srv.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Campaigns []View `json:"campaigns"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != v.ID {
		t.Fatalf("list = %+v", list)
	}

	gresp, err := http.Get(srv.URL + "/v1/campaigns/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got View
	if err := json.NewDecoder(gresp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if got.Status != CampaignDone || got.Rounds != 2 {
		t.Fatalf("GET by id = %+v", got)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/campaigns/"+v.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", dresp.StatusCode)
	}

	for _, path := range []string{"/v1/campaigns/deadbeef"} {
		gr, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		gr.Body.Close()
		if gr.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d", path, gr.StatusCode)
		}
	}
}
