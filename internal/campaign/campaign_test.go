package campaign

import (
	"context"
	"reflect"
	"testing"

	"jayanti98/internal/machine"
)

func testSpec() *Spec {
	return &Spec{
		Alg:       "group-update",
		Object:    "fetch-increment",
		N:         2,
		BatchSize: 16,
		MaxCorpus: 8,
	}
}

func TestSpecNormalizeAndID(t *testing.T) {
	sparse := &Spec{}
	id1, err := sparse.ID()
	if err != nil {
		t.Fatal(err)
	}
	// Normalization makes the sparse spec and its explicit-defaults twin the
	// same campaign.
	explicit := &Spec{
		Alg: "group-update", Object: "fetch-increment", N: 2, OpsPerProc: 1,
		Seed: 1, TossRange: 2, BatchSize: 64, MaxCorpus: 32,
	}
	id2, err := explicit.ID()
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("sparse and explicit spec IDs differ: %s vs %s", id1, id2)
	}
	if len(id1) != 64 {
		t.Fatalf("ID is not a sha256 hex digest: %q", id1)
	}
	// Any identity-bearing field changes the ID.
	other := &Spec{Seed: 2}
	id3, err := other.ID()
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Fatal("different seeds, same campaign ID")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Alg: "no-such-construction"},
		{Object: "no-such-workload"},
		{N: 1},
		{N: 9},
		{OpsPerProc: 99},
		{Budget: -1},
		{TossRange: -3},
		{BatchSize: 5000},
		{MaxCorpus: 2000},
		{MaxRounds: -1},
		{Alg: "tas-tournament", Object: "fetch-increment"}, // zoo alg, wrong workload
		{Alg: "tas-tournament", OpsPerProc: 2},             // zoo algs are one-shot
		{Alg: "tas-tv", N: 3},                              // TV is two-process
	}
	for i, s := range bad {
		s := s
		s.Normalize()
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, s)
		}
	}
	good := testSpec()
	good.Normalize()
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	// A zoo algorithm is campaignable: Object defaults to its workload.
	zoo := Spec{Alg: "tas-tournament", N: 3}
	zoo.Normalize()
	if zoo.Object != "tas" {
		t.Fatalf("zoo Object defaulted to %q, want tas", zoo.Object)
	}
	if err := zoo.Validate(); err != nil {
		t.Fatalf("zoo spec rejected: %v", err)
	}
}

func TestCorpusAddEvictsOldest(t *testing.T) {
	var c Corpus
	for i := 0; i < 5; i++ {
		c.Add(Entry{Schedule: []int{i}, Round: 0, Slot: i}, 3)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if got := c.Schedules(); !reflect.DeepEqual(got, [][]int{{2}, {3}, {4}}) {
		t.Fatalf("kept schedules = %v", got)
	}
}

func TestCorpusDigestCanonical(t *testing.T) {
	var a, b Corpus
	for i := 0; i < 3; i++ {
		a.Add(Entry{Schedule: []int{i, i}, Round: 1, Slot: i, NewDigests: 1}, 8)
		b.Add(Entry{Schedule: []int{i, i}, Round: 1, Slot: i, NewDigests: 1}, 8)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("equal corpora, different digests")
	}
	b.Add(Entry{Schedule: []int{9}}, 8)
	if a.Digest() == b.Digest() {
		t.Fatal("different corpora, same digest")
	}
}

// runRounds executes k rounds serially through a fresh state and returns it.
func runRounds(t *testing.T, spec *Spec, k, parallel int) *State {
	t.Helper()
	spec.Normalize()
	st := NewState(*spec)
	for r := 0; r < k; r++ {
		rr, err := ExecuteRound(context.Background(), st.NextRound(), parallel)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.ApplyRound(rr); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestCampaignDeterministic is the headline determinism property: two full
// runs of the same spec — at different parallelism — evolve identical
// corpora and coverage.
func TestCampaignDeterministic(t *testing.T) {
	a := runRounds(t, testSpec(), 3, 1)
	b := runRounds(t, testSpec(), 3, 4)
	if a.Corpus.Digest() != b.Corpus.Digest() {
		t.Fatal("corpus digests diverged across parallelism")
	}
	if a.CoverageDigest() != b.CoverageDigest() {
		t.Fatal("coverage digests diverged across parallelism")
	}
	if a.Execs != b.Execs || a.TotalSteps != b.TotalSteps {
		t.Fatalf("counters diverged: %+v vs %+v", a, b)
	}
	if a.Corpus.Len() == 0 {
		t.Fatal("3 rounds kept nothing — novelty detection is broken")
	}
}

// TestCampaignEngineIndependent: the corpus a campaign evolves on the
// bytecode VM is the corpus it evolves on the goroutine engine — the
// coverage digests are engine-independent, so replicas may mix engines.
func TestCampaignEngineIndependent(t *testing.T) {
	digests := make(map[machine.Engine]string)
	for _, eng := range []machine.Engine{machine.EngineGoroutine, machine.EngineVM} {
		prev := machine.SetDefaultEngine(eng)
		st := runRounds(t, testSpec(), 2, 2)
		machine.SetDefaultEngine(prev)
		digests[eng] = st.Corpus.Digest()
	}
	if digests[machine.EngineGoroutine] != digests[machine.EngineVM] {
		t.Fatal("corpus evolution differs between engines")
	}
}

// TestExecuteRoundSliceMerge is the dist merge property at the campaign
// layer: any partition of the round's slots, concatenated in order, equals
// the unsliced round.
func TestExecuteRoundSliceMerge(t *testing.T) {
	spec := testSpec()
	spec.Normalize()
	st := runRounds(t, spec, 1, 2) // one round so the corpus is non-empty
	rs := st.NextRound()
	whole, err := ExecuteRound(context.Background(), rs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, cuts := range [][]int{{8}, {1, 5, 9}, {4, 8, 12}} {
		var merged []InputResult
		lo := 0
		for _, hi := range append(cuts, spec.BatchSize) {
			part, err := ExecuteRoundSlice(context.Background(), rs, lo, hi, 2)
			if err != nil {
				t.Fatal(err)
			}
			merged = append(merged, part...)
			lo = hi
		}
		if !reflect.DeepEqual(merged, whole.Results) {
			t.Fatalf("sliced execution at cuts %v diverged from the whole round", cuts)
		}
	}
}

func TestExecuteRoundSliceRejectsBadRange(t *testing.T) {
	spec := testSpec()
	spec.Normalize()
	rs := &RoundSpec{Campaign: *spec}
	for _, r := range [][2]int{{-1, 4}, {0, spec.BatchSize + 1}, {4, 4}, {5, 2}} {
		if _, err := ExecuteRoundSlice(context.Background(), rs, r[0], r[1], 1); err == nil {
			t.Errorf("range [%d, %d) accepted", r[0], r[1])
		}
	}
}

func TestApplyRoundValidation(t *testing.T) {
	spec := testSpec()
	spec.Normalize()
	st := NewState(*spec)
	if _, err := st.ApplyRound(&RoundResult{Round: 3}); err == nil {
		t.Fatal("wrong round number accepted")
	}
	if _, err := st.ApplyRound(&RoundResult{Round: 0, Results: make([]InputResult, 2)}); err == nil {
		t.Fatal("wrong result count accepted")
	}
}

// TestCheckpointRoundTrip: a state resumed from its checkpoint continues
// byte-identically to the uninterrupted run.
func TestCheckpointRoundTrip(t *testing.T) {
	spec := testSpec()
	uninterrupted := runRounds(t, spec, 4, 2)

	resumed := runRounds(t, testSpec(), 2, 2)
	data, err := resumed.Encode()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeState(data)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		rr, err := ExecuteRound(context.Background(), restored.NextRound(), 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := restored.ApplyRound(rr); err != nil {
			t.Fatal(err)
		}
	}
	finalA, err := uninterrupted.Encode()
	if err != nil {
		t.Fatal(err)
	}
	finalB, err := restored.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(finalA) != string(finalB) {
		t.Fatalf("resumed state diverged from uninterrupted run:\n%s\nvs\n%s", finalA, finalB)
	}
}

func TestDecodeStateRejectsGarbage(t *testing.T) {
	if _, err := DecodeState([]byte("{not json")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeState([]byte(`{"spec":{"alg":"nope"}}`)); err == nil {
		t.Fatal("invalid embedded spec decoded")
	}
}

func TestRecordFindingDedupesAndCaps(t *testing.T) {
	st := NewState(*testSpec())
	f := Finding{Kind: "linearizability", Schedule: []int{0, 1}}
	if !st.RecordFinding(f) {
		t.Fatal("first finding rejected")
	}
	if st.RecordFinding(f) {
		t.Fatal("duplicate finding accepted")
	}
	for i := 0; len(st.Findings) < MaxStoredFindings; i++ {
		st.RecordFinding(Finding{Kind: "linearizability", Schedule: []int{i, i}})
	}
	if st.RecordFinding(Finding{Kind: "other", Schedule: []int{9, 9, 9}}) {
		t.Fatal("finding accepted beyond the cap")
	}
}

// TestZooCampaignRound: a zoo algorithm is a first-class campaign target —
// one round of coverage-guided search over the tournament TAS runs clean,
// with truncated (livelocked) runs reported as incomplete rather than as
// failures.
func TestZooCampaignRound(t *testing.T) {
	spec := Spec{Alg: "tas-tournament", N: 2, BatchSize: 8, Seed: 3}
	spec.Normalize()
	rr, err := ExecuteRound(context.Background(), &RoundSpec{Campaign: spec}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) != spec.BatchSize {
		t.Fatalf("round produced %d results, want %d", len(rr.Results), spec.BatchSize)
	}
	completed := 0
	for i, res := range rr.Results {
		if res.FailKind != "" {
			t.Fatalf("slot %d failed: %s: %s", i, res.FailKind, res.FailDetail)
		}
		if len(res.Trace) == 0 {
			t.Fatalf("slot %d has an empty coverage trace", i)
		}
		if res.Completed {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("no slot completed — random walks should finish the tournament")
	}
}
