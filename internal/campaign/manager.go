package campaign

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"jayanti98/internal/explore"
	"jayanti98/internal/obs"
	"jayanti98/internal/sweep"
)

// Executor runs one campaign round somewhere — in-process
// (LocalExecutor), or through the job scheduler and the dist shard-lease
// protocol (jobs.NewRoundExecutor), which is how a worker fleet executes
// rounds. The returned result must obey the round determinism contract:
// identical to every other correct execution of the same RoundSpec.
type Executor interface {
	ExecuteRound(ctx context.Context, rs *RoundSpec) (*RoundResult, error)
}

// LocalExecutor executes rounds in-process over the sweep worker pool.
type LocalExecutor struct {
	// Parallel bounds worker goroutines (sweep.Workers semantics).
	Parallel int
}

// ExecuteRound implements Executor.
func (e *LocalExecutor) ExecuteRound(ctx context.Context, rs *RoundSpec) (*RoundResult, error) {
	return ExecuteRound(ctx, rs, e.Parallel)
}

// Checkpointer persists campaign state between process lives — the jobs
// cache implements it (jobs.Cache.PutCheckpoint/GetCheckpoint), keyed by
// campaign ID.
type Checkpointer interface {
	PutCheckpoint(id string, data []byte) error
	GetCheckpoint(id string) ([]byte, bool)
}

// CampaignStatus is a campaign's lifecycle state.
type CampaignStatus string

// The campaign states. Unlike jobs, "done" is exceptional — it only
// happens when MaxRounds bounds the campaign; the normal terminal state of
// an indefinite campaign is "stopped".
const (
	CampaignRunning CampaignStatus = "running"
	CampaignStopped CampaignStatus = "stopped"
	CampaignDone    CampaignStatus = "done"
	CampaignFailed  CampaignStatus = "failed"
)

// Terminal reports whether the status is final (restartable via Start).
func (s CampaignStatus) Terminal() bool { return s != CampaignRunning }

// View is an immutable snapshot of a campaign — the unit the HTTP layer
// serves.
type View struct {
	ID     string         `json:"id"`
	Spec   Spec           `json:"spec"`
	Status CampaignStatus `json:"status"`
	Error  string         `json:"error,omitempty"`

	// Rounds is the number of completed rounds; Execs/TotalSteps the
	// cumulative input and step counts (across restarts — they live in
	// the checkpoint).
	Rounds     int   `json:"rounds"`
	Execs      int64 `json:"execs"`
	TotalSteps int64 `json:"totalSteps"`
	// ExecsPerSec is the throughput of this process's tenure (resumed
	// campaigns do not average over downtime).
	ExecsPerSec float64 `json:"execsPerSec"`

	// CorpusSize/CorpusDigest describe the interesting-schedule corpus;
	// CoverageSize counts distinct state digests reached.
	CorpusSize   int    `json:"corpusSize"`
	CorpusDigest string `json:"corpusDigest"`
	CoverageSize int    `json:"coverageSize"`
	// NewCoverageRate is the fraction of the last round's inputs' digests
	// that were novel: fresh digests last round / batch size. A healthy
	// young campaign sits well above 0; a plateaued one at 0.
	NewCoverageRate float64 `json:"newCoverageRate"`

	// FindingsSeen counts every failing input ever observed; Findings are
	// the kept (shrunk, deduped, capped) counterexamples.
	FindingsSeen int64     `json:"findingsSeen"`
	Findings     []Finding `json:"findings,omitempty"`

	Started time.Time `json:"started"`
}

// ManagerOptions configures a Manager. Everything here is an execution
// knob: none of it may change what a campaign computes, only where, how
// fast, and what is persisted.
type ManagerOptions struct {
	// Executor runs rounds (nil: LocalExecutor with default parallelism).
	Executor Executor
	// Checkpointer persists state across restarts (nil: no persistence).
	Checkpointer Checkpointer
	// CheckpointEvery checkpoints after every k-th round (≤ 0: 1, every
	// round — rounds are seconds, checkpoints are kilobytes).
	CheckpointEvery int
	// FindingsDir receives one replay file per kept finding (empty: no
	// files; findings still appear in stats).
	FindingsDir string
	// ShrinksPerRound bounds shrink attempts per round (≤ 0: 4) — a
	// round of a very broken construction can fail in every slot, and
	// each shrink is many re-executions.
	ShrinksPerRound int
	// Obs, Tracer, Logger are the observability sinks (nil: process
	// defaults / discard).
	Obs    *obs.Registry
	Tracer *obs.Tracer
	Logger *slog.Logger
}

// instance is one tracked campaign: its deterministic state plus the
// runtime around it.
type instance struct {
	id string

	mu             sync.Mutex
	state          *State
	status         CampaignStatus
	errMsg         string
	started        time.Time
	procStart      time.Time // this process's tenure, for execs/sec
	procExecs      int64
	lastNewDigests int

	cancel context.CancelFunc
	done   chan struct{} // closed when the loop exits
}

// Manager owns the campaign instances of one server: starting, stopping,
// resuming from checkpoints, and snapshotting stats.
type Manager struct {
	opts ManagerOptions

	mu        sync.Mutex
	campaigns map[string]*instance
	draining  bool

	reg    *obs.Registry
	tracer *obs.Tracer
	logger *slog.Logger
	met    struct {
		rounds, execs, newDigests, findings *obs.Counter
	}
}

// ErrShuttingDown is returned by Start after Shutdown has begun.
var ErrShuttingDown = errors.New("campaign: manager shutting down")

// NewManager builds a manager and registers its metrics.
func NewManager(opts ManagerOptions) *Manager {
	if opts.Executor == nil {
		opts.Executor = &LocalExecutor{}
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 1
	}
	if opts.ShrinksPerRound <= 0 {
		opts.ShrinksPerRound = 4
	}
	m := &Manager{opts: opts, campaigns: make(map[string]*instance)}
	m.reg = opts.Obs
	if m.reg == nil {
		m.reg = obs.Default()
	}
	m.tracer = opts.Tracer
	if m.tracer == nil {
		m.tracer = obs.DefaultTracer()
	}
	m.logger = opts.Logger
	if m.logger == nil {
		m.logger = obs.NopLogger()
	}
	m.met.rounds = m.reg.Counter("campaign_rounds_total", "Campaign rounds completed.", nil)
	m.met.execs = m.reg.Counter("campaign_execs_total", "Campaign inputs executed (schedules run).", nil)
	m.met.newDigests = m.reg.Counter("campaign_new_digests_total", "Previously unseen state digests reached by campaign inputs.", nil)
	m.met.findings = m.reg.Counter("campaign_findings_total", "Shrunk, deduplicated campaign findings kept.", nil)
	m.reg.GaugeFunc("campaign_active", "Campaigns currently running.", nil, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		active := 0
		for _, c := range m.campaigns {
			c.mu.Lock()
			if c.status == CampaignRunning {
				active++
			}
			c.mu.Unlock()
		}
		return float64(active)
	})
	m.reg.GaugeFunc("campaign_corpus_entries", "Corpus entries across all tracked campaigns.", nil, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		total := 0
		for _, c := range m.campaigns {
			c.mu.Lock()
			total += c.state.Corpus.Len()
			c.mu.Unlock()
		}
		return float64(total)
	})
	m.reg.GaugeFunc("campaign_coverage_digests", "Distinct state digests covered across all tracked campaigns.", nil, func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		total := 0
		for _, c := range m.campaigns {
			c.mu.Lock()
			total += len(c.state.Coverage)
			c.mu.Unlock()
		}
		return float64(total)
	})
	return m
}

// Start begins (or re-attaches to) the campaign of spec. Submitting a spec
// whose campaign is already running returns the running campaign
// (created=false) — content-hashed identity makes Start idempotent, the
// job-submission contract. A terminal campaign is restarted from its
// in-memory state; an unknown ID with a checkpoint resumes from it, so a
// restarted server picks campaigns up where the previous life left them.
func (m *Manager) Start(spec *Spec) (View, bool, error) {
	id, err := spec.ID()
	if err != nil {
		return View{}, false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return View{}, false, ErrShuttingDown
	}
	if c, ok := m.campaigns[id]; ok {
		c.mu.Lock()
		running := c.status == CampaignRunning
		c.mu.Unlock()
		if running {
			return c.view(true), false, nil
		}
		// Terminal: restart the loop from the instance's current state.
		m.launchLocked(c)
		return c.view(true), false, nil
	}
	st := NewState(*spec)
	if m.opts.Checkpointer != nil {
		if data, ok := m.opts.Checkpointer.GetCheckpoint(id); ok {
			restored, err := DecodeState(data)
			if err != nil {
				return View{}, false, fmt.Errorf("campaign: checkpoint for %s: %w", obs.ShortID(id), err)
			}
			st = restored
		}
	}
	c := &instance{id: id, state: st, started: time.Now()}
	m.campaigns[id] = c
	m.launchLocked(c)
	return c.view(true), true, nil
}

// Resume restarts the campaign checkpointed under id, if any — the boot
// path of a restarted lbserver. An already-tracked id is returned as is.
func (m *Manager) Resume(id string) (View, error) {
	m.mu.Lock()
	if c, ok := m.campaigns[id]; ok {
		m.mu.Unlock()
		return c.view(true), nil
	}
	m.mu.Unlock()
	if m.opts.Checkpointer == nil {
		return View{}, fmt.Errorf("campaign: no checkpointer configured")
	}
	data, ok := m.opts.Checkpointer.GetCheckpoint(id)
	if !ok {
		return View{}, fmt.Errorf("campaign: no checkpoint for %q", id)
	}
	st, err := DecodeState(data)
	if err != nil {
		return View{}, err
	}
	spec := st.Spec
	return firstView(m.Start(&spec))
}

func firstView(v View, _ bool, err error) (View, error) { return v, err }

// launchLocked starts (or restarts) the instance's round loop. Both
// m.mu and a fresh (non-running) instance are required.
func (m *Manager) launchLocked(c *instance) {
	ctx, cancel := context.WithCancel(context.Background())
	c.mu.Lock()
	c.status = CampaignRunning
	c.errMsg = ""
	c.cancel = cancel
	c.done = make(chan struct{})
	c.procStart = time.Now()
	c.procExecs = 0
	if c.started.IsZero() {
		c.started = c.procStart
	}
	c.mu.Unlock()
	go m.run(ctx, c)
}

// Get snapshots one campaign, findings included.
func (m *Manager) Get(id string) (View, bool) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	m.mu.Unlock()
	if !ok {
		return View{}, false
	}
	return c.view(true), true
}

// List snapshots every tracked campaign (findings elided — fetch by ID),
// oldest first, ties broken by ID.
func (m *Manager) List() []View {
	m.mu.Lock()
	tracked := make([]*instance, 0, len(m.campaigns))
	for _, c := range m.campaigns {
		tracked = append(tracked, c)
	}
	m.mu.Unlock()
	views := make([]View, 0, len(tracked))
	for _, c := range tracked {
		views = append(views, c.view(false))
	}
	sort.Slice(views, func(i, k int) bool {
		if !views[i].Started.Equal(views[k].Started) {
			return views[i].Started.Before(views[k].Started)
		}
		return views[i].ID < views[k].ID
	})
	return views
}

// Stop cancels a running campaign and waits for its loop to exit (the
// final checkpoint is written before Stop returns). Stopping a terminal
// campaign is a no-op. Returns false for unknown IDs.
func (m *Manager) Stop(id string) (View, bool) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	m.mu.Unlock()
	if !ok {
		return View{}, false
	}
	c.mu.Lock()
	cancel, done := c.cancel, c.done
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		<-done
	}
	return c.view(true), true
}

// Shutdown stops every running campaign and waits for their loops — and
// final checkpoints — at most until ctx is done.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	tracked := make([]*instance, 0, len(m.campaigns))
	for _, c := range m.campaigns {
		tracked = append(tracked, c)
	}
	m.mu.Unlock()
	for _, c := range tracked {
		c.mu.Lock()
		cancel := c.cancel
		c.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	for _, c := range tracked {
		c.mu.Lock()
		done := c.done
		c.mu.Unlock()
		if done == nil {
			continue
		}
		select {
		case <-done:
		case <-ctx.Done():
			return fmt.Errorf("campaign: shutdown: %w", ctx.Err())
		}
	}
	return nil
}

// run is the campaign loop: build round → execute → fold → shrink
// failures → checkpoint, until stopped, failed, or MaxRounds.
func (m *Manager) run(ctx context.Context, c *instance) {
	c.mu.Lock()
	done := c.done
	c.mu.Unlock()
	defer close(done)
	logger := m.logger.With("campaign_id", obs.ShortID(c.id))
	ctx = obs.WithLogger(obs.WithCampaignID(ctx, c.id), m.logger)
	logger.Info("campaign started", "alg", c.state.Spec.Alg, "round", c.state.Round)

	final := CampaignStopped
	for {
		c.mu.Lock()
		spec := c.state.Spec
		round := c.state.Round
		rs := c.state.NextRound()
		c.mu.Unlock()
		if spec.MaxRounds > 0 && round >= spec.MaxRounds {
			final = CampaignDone
			break
		}
		if ctx.Err() != nil {
			break
		}

		rctx, span := m.tracer.Start(ctx, "campaign round")
		span.SetAttr("campaign_id", obs.ShortID(c.id))
		span.SetAttr("round", fmt.Sprintf("%d", round))
		start := time.Now()
		rr, err := m.opts.Executor.ExecuteRound(rctx, rs)
		if err != nil {
			span.SetAttr("error", err.Error())
			span.End()
			if ctx.Err() != nil || errors.Is(err, context.Canceled) {
				break
			}
			c.mu.Lock()
			c.errMsg = err.Error()
			c.mu.Unlock()
			logger.Error("campaign round failed", "round", round, "error", err)
			final = CampaignFailed
			break
		}

		c.mu.Lock()
		delta, err := c.state.ApplyRound(rr)
		if err == nil {
			c.procExecs += int64(spec.BatchSize)
			c.lastNewDigests = delta.NewDigests
		} else {
			c.errMsg = err.Error()
		}
		c.mu.Unlock()
		if err != nil {
			span.SetAttr("error", err.Error())
			span.End()
			final = CampaignFailed
			break
		}

		kept := m.processFailures(rctx, c, rr.Round, delta)
		span.SetAttr("new_digests", fmt.Sprintf("%d", delta.NewDigests))
		span.SetAttr("failures", fmt.Sprintf("%d", len(delta.Failures)))
		span.End()

		m.met.rounds.Inc()
		m.met.execs.Add(int64(spec.BatchSize))
		m.met.newDigests.Add(int64(delta.NewDigests))
		if kept > 0 {
			m.met.findings.Add(int64(kept))
		}
		m.reg.Histogram("campaign_round_duration_seconds", "Campaign round wall clock (execute + fold + shrink).",
			nil, nil).Observe(time.Since(start).Seconds())
		logger.Debug("campaign round done", "round", round,
			"new_digests", delta.NewDigests, "failures", len(delta.Failures), "kept_findings", kept)

		if (round+1)%m.opts.CheckpointEvery == 0 {
			m.checkpoint(c, logger)
		}
	}

	m.checkpoint(c, logger)
	c.mu.Lock()
	c.status = final
	c.mu.Unlock()
	logger.Info("campaign "+string(final), "rounds", c.state.Round, "findings_seen", c.state.FindingsSeen)
}

// processFailures confirms, shrinks, persists, and records the round's
// failures, returning how many new findings were kept. Shrinking runs
// under the campaign context, so stopping a campaign cuts a long shrink
// short (explore.ShrinkCtx) without losing the counterexample.
func (m *Manager) processFailures(ctx context.Context, c *instance, round int, delta RoundDelta) int {
	kept := 0
	shrinks := 0
	logger := obs.Logger(ctx)
	for _, sf := range delta.Failures {
		c.mu.Lock()
		full := len(c.state.Findings) >= MaxStoredFindings
		spec := c.state.Spec
		c.mu.Unlock()
		if full || shrinks >= m.opts.ShrinksPerRound {
			break
		}
		shrinks++
		res := sf.Result
		rcfg := spec.ExploreConfig()
		rcfg.Tosses = explore.ReplayTosses(res.Tosses)
		kind := explore.FailureKind(res.FailKind)
		shrunk := explore.ShrinkCtx(ctx, rcfg, res.Schedule, kind)
		final, err := explore.RunSchedule(rcfg, shrunk)
		if err != nil || final.Failure == nil {
			logger.Warn("campaign failure did not reproduce for shrinking",
				"round", round, "slot", sf.Slot, "kind", res.FailKind)
			continue
		}
		f := Finding{
			Kind:        string(final.Failure.Kind),
			Detail:      final.Failure.Detail,
			Schedule:    final.Schedule,
			Tosses:      final.Tosses,
			OriginalLen: len(res.Schedule),
			Round:       round,
			Slot:        sf.Slot,
			Seed:        sweep.Derive(spec.Seed, round*spec.BatchSize+sf.Slot),
		}
		rp := &explore.Replay{
			Alg:         spec.Alg,
			Object:      spec.Object,
			N:           spec.N,
			OpsPerProc:  spec.OpsPerProc,
			Budget:      spec.Budget,
			Seed:        f.Seed,
			Kind:        final.Failure.Kind,
			Detail:      final.Failure.Detail,
			Schedule:    final.Schedule,
			Tosses:      final.Tosses,
			Events:      final.Events,
			OriginalLen: len(res.Schedule),
		}
		if m.opts.FindingsDir != "" {
			if err := os.MkdirAll(m.opts.FindingsDir, 0o755); err != nil {
				logger.Error("campaign findings dir", "error", err)
			} else {
				path := filepath.Join(m.opts.FindingsDir,
					fmt.Sprintf("campaign-%s-r%d-s%d.json", obs.ShortID(c.id), round, sf.Slot))
				if err := explore.WriteReplay(path, rp); err != nil {
					logger.Error("campaign replay write", "path", path, "error", err)
				} else if _, diff, verr := explore.Verify(rp); verr != nil || diff != "" {
					// A replay that does not reproduce bit-for-bit is a
					// harness bug; keep the file for diagnosis but say so.
					logger.Error("campaign replay failed verification", "path", path, "diff", diff, "error", verr)
				} else {
					f.Path = path
				}
			}
		}
		c.mu.Lock()
		added := c.state.RecordFinding(f)
		c.mu.Unlock()
		if added {
			kept++
			logger.Info("campaign finding kept", "round", round, "slot", sf.Slot,
				"kind", f.Kind, "schedule_len", len(f.Schedule), "shrunk_from", f.OriginalLen, "path", f.Path)
		}
	}
	return kept
}

// checkpoint persists the instance's state under its campaign ID.
func (m *Manager) checkpoint(c *instance, logger *slog.Logger) {
	if m.opts.Checkpointer == nil {
		return
	}
	c.mu.Lock()
	data, err := c.state.Encode()
	round := c.state.Round
	c.mu.Unlock()
	if err == nil {
		err = m.opts.Checkpointer.PutCheckpoint(c.id, data)
	}
	if err != nil {
		logger.Error("campaign checkpoint", "round", round, "error", err)
		return
	}
	logger.Debug("campaign checkpointed", "round", round, "bytes", len(data))
}

// view snapshots the instance.
func (c *instance) view(includeFindings bool) View {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state
	v := View{
		ID:           c.id,
		Spec:         st.Spec,
		Status:       c.status,
		Error:        c.errMsg,
		Rounds:       st.Round,
		Execs:        st.Execs,
		TotalSteps:   st.TotalSteps,
		CorpusSize:   st.Corpus.Len(),
		CorpusDigest: st.Corpus.Digest(),
		CoverageSize: len(st.Coverage),
		FindingsSeen: st.FindingsSeen,
		Started:      c.started,
	}
	if elapsed := time.Since(c.procStart).Seconds(); elapsed > 0 && c.procExecs > 0 {
		v.ExecsPerSec = float64(c.procExecs) / elapsed
	}
	if st.Spec.BatchSize > 0 {
		v.NewCoverageRate = float64(c.lastNewDigests) / float64(st.Spec.BatchSize)
	}
	if includeFindings {
		v.Findings = append([]Finding(nil), st.Findings...)
	}
	return v
}
