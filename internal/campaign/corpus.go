package campaign

import (
	"crypto/sha256"
	"encoding/hex"
)

// Entry is one kept corpus schedule and its provenance.
type Entry struct {
	// Schedule is the interesting schedule (the run's delivered pids).
	Schedule []int `json:"schedule"`
	// Round and Slot locate the run that produced it.
	Round int `json:"round"`
	Slot  int `json:"slot"`
	// NewDigests is how many previously unseen state digests the run
	// reached — the reason the entry was kept.
	NewDigests int `json:"newDigests"`
}

// Corpus is the ordered set of interesting schedules. Order is insertion
// order (round-major, slot-minor — the deterministic merge order), which
// makes both the eviction policy and the digest reproducible.
type Corpus struct {
	Entries []Entry `json:"entries"`
}

// Add appends an entry, evicting the oldest entries beyond maxEntries.
func (c *Corpus) Add(e Entry, maxEntries int) {
	c.Entries = append(c.Entries, e)
	if maxEntries > 0 && len(c.Entries) > maxEntries {
		c.Entries = c.Entries[len(c.Entries)-maxEntries:]
	}
}

// Len returns the number of kept entries.
func (c *Corpus) Len() int { return len(c.Entries) }

// Schedules returns the corpus schedules in insertion order — the wire
// form a RoundSpec carries.
func (c *Corpus) Schedules() [][]int {
	out := make([][]int, len(c.Entries))
	for i, e := range c.Entries {
		out[i] = e.Schedule
	}
	return out
}

// Digest returns the SHA-256 (lowercase hex) of the corpus's canonical
// JSON. Two campaign replicas that evolved the same corpus — the
// determinism tests' claim — produce equal digests.
func (c *Corpus) Digest() string {
	canon, err := canonicalJSON(c.Entries)
	if err != nil {
		// Entries are plain ints; marshalling cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:])
}
