//go:build mutation

package campaign

import (
	"context"
	"strings"
	"testing"

	"jayanti98/internal/explore"
)

// The mutation-tagged campaign test is the end-to-end hunting story: a
// campaign pointed at the deliberately broken group-update variant
// (universal.NewBrokenGroupUpdate, -tags mutation) must find the
// linearizability violation within a few rounds, shrink it to a short
// counterexample, persist a replay file, and that file must reproduce
// bit-for-bit. Run with: go test -tags mutation ./internal/campaign/
func TestCampaignFindsMutant(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(ManagerOptions{
		Executor:     &LocalExecutor{Parallel: 4},
		Checkpointer: newMemCheckpointer(),
		FindingsDir:  dir,
	})
	defer m.Shutdown(context.Background())

	spec := &Spec{
		Alg:       explore.BrokenGroupUpdate,
		Object:    "fetch-increment",
		N:         2,
		BatchSize: 64,
		MaxRounds: 8,
	}
	view, _, err := m.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, view.ID)
	if final.Status == CampaignFailed {
		t.Fatalf("campaign failed: %s", final.Error)
	}
	if len(final.Findings) == 0 {
		t.Fatalf("%d rounds (%d execs, %d failing inputs seen) kept no finding",
			final.Rounds, final.Execs, final.FindingsSeen)
	}
	f := final.Findings[0]
	if f.Kind != string(explore.FailNonLinearizable) {
		t.Fatalf("finding kind = %s (%s)", f.Kind, f.Detail)
	}
	if len(f.Schedule) > 20 {
		t.Fatalf("shrunk schedule still has %d steps (want <= 20): %v", len(f.Schedule), f.Schedule)
	}
	if f.OriginalLen < len(f.Schedule) {
		t.Fatalf("original length %d shorter than shrunk %d", f.OriginalLen, len(f.Schedule))
	}
	if f.Path == "" || !strings.HasPrefix(f.Path, dir) {
		t.Fatalf("finding not persisted under %s: %q", dir, f.Path)
	}

	// The persisted replay reproduces the violation bit-for-bit.
	rp, err := explore.ReadReplay(f.Path)
	if err != nil {
		t.Fatal(err)
	}
	rec, diff, err := explore.Verify(rp)
	if err != nil {
		t.Fatal(err)
	}
	if diff != "" {
		t.Fatalf("replay does not reproduce bit-for-bit: %s", diff)
	}
	if rec.Failure == nil || rec.Failure.Kind != explore.FailNonLinearizable {
		t.Fatalf("replay failure: %+v", rec.Failure)
	}
	t.Logf("found in %d rounds: %s, schedule %v (shrunk from %d)",
		final.Rounds, f.Kind, f.Schedule, f.OriginalLen)
}
