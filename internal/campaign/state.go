package campaign

import (
	"encoding/json"
	"fmt"

	"jayanti98/internal/explore"
)

// Finding is one confirmed, shrunk violation surfaced by a campaign.
type Finding struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	// Schedule is the shrunk failing schedule; OriginalLen its length
	// before shrinking.
	Schedule    []int     `json:"schedule"`
	Tosses      [][]int64 `json:"tosses"`
	OriginalLen int       `json:"originalLen"`
	// Round and Slot locate the run that found it; Seed is that slot's
	// derived seed (provenance).
	Round int   `json:"round"`
	Slot  int   `json:"slot"`
	Seed  int64 `json:"seed"`
	// Path is the persisted replay file ("" when no findings dir is
	// configured). Execution metadata, deliberately excluded from the
	// checkpoint's determinism surface along with nothing else — the path
	// is stable given a stable findings dir.
	Path string `json:"path,omitempty"`
}

// key is the finding's dedupe identity: kind plus the shrunk schedule.
// Distinct raw runs routinely shrink to one canonical counterexample;
// storing it once keeps stats meaningful on a campaign that hits the same
// bug every round.
func (f *Finding) key() string {
	return fmt.Sprintf("%s|%v", f.Kind, f.Schedule)
}

// State is a campaign's complete deterministic state: everything a
// checkpoint must capture for a restarted server to resume byte-identically.
// Wall-clock stats (start time, execs/sec) live in the manager, not here.
type State struct {
	Spec Spec `json:"spec"`
	// Round is the next round to execute (== rounds completed).
	Round int `json:"round"`
	// Execs counts inputs executed; TotalSteps the shared-memory steps.
	Execs      int64 `json:"execs"`
	TotalSteps int64 `json:"totalSteps"`
	// Coverage is the covered state-digest set, ascending (the canonical
	// snapshot order).
	Coverage []uint64 `json:"coverage"`
	Corpus   Corpus   `json:"corpus"`
	// Findings are the kept (deduped, capped) shrunk violations;
	// FindingsSeen counts every failing input observed, including
	// duplicates of kept findings and failures beyond the cap.
	Findings     []Finding `json:"findings"`
	FindingsSeen int64     `json:"findingsSeen"`

	// cov mirrors Coverage as a set for O(1) novelty checks; rebuilt on
	// decode, maintained by ApplyRound.
	cov *explore.Coverage
}

// NewState builds the initial state of a normalized spec.
func NewState(spec Spec) *State {
	return &State{Spec: spec, cov: explore.NewCoverage()}
}

// coverage returns the live coverage set, rebuilding it from the snapshot
// after a decode.
func (st *State) coverage() *explore.Coverage {
	if st.cov == nil {
		st.cov = explore.NewCoverageFrom(st.Coverage)
	}
	return st.cov
}

// NextRound freezes the round the campaign should execute next: the
// current corpus schedules plus the round counter.
func (st *State) NextRound() *RoundSpec {
	return &RoundSpec{Campaign: st.Spec, Round: st.Round, Corpus: st.Corpus.Schedules()}
}

// RoundDelta summarizes what one applied round changed.
type RoundDelta struct {
	// NewDigests is how many previously unseen state digests the round
	// reached; NewEntries how many corpus entries it added.
	NewDigests int
	NewEntries int
	// Failures are the round's failing inputs (slot order) with their
	// slots, for the manager's shrink-and-persist workflow.
	Failures []SlotFailure
}

// SlotFailure pairs a failing input with its slot.
type SlotFailure struct {
	Slot   int
	Result InputResult
}

// ApplyRound folds a completed round into the state: traces merge into the
// coverage map in slot order, inputs that reached novel digests join the
// corpus, counters advance, and the round counter increments. Slot order
// makes the fold independent of how the round was executed — the corpus
// a 16-worker fleet evolves is the corpus the serial loop evolves.
//
// Failures are returned, not folded: confirming and shrinking them needs
// re-execution, which is the manager's job (RecordFinding stores the
// outcome).
func (st *State) ApplyRound(rr *RoundResult) (RoundDelta, error) {
	if rr.Round != st.Round {
		return RoundDelta{}, fmt.Errorf("campaign: applying round %d to state at round %d", rr.Round, st.Round)
	}
	if len(rr.Results) != st.Spec.BatchSize {
		return RoundDelta{}, fmt.Errorf("campaign: round %d has %d results, want %d", rr.Round, len(rr.Results), st.Spec.BatchSize)
	}
	var delta RoundDelta
	cov := st.coverage()
	for slot, res := range rr.Results {
		st.Execs++
		st.TotalSteps += int64(res.Steps)
		fresh := cov.AddTrace(res.Trace)
		delta.NewDigests += len(fresh)
		if len(fresh) > 0 && len(res.Schedule) > 0 {
			st.Corpus.Add(Entry{
				Schedule:   res.Schedule,
				Round:      rr.Round,
				Slot:       slot,
				NewDigests: len(fresh),
			}, st.Spec.MaxCorpus)
			delta.NewEntries++
		}
		if res.FailKind != "" {
			st.FindingsSeen++
			delta.Failures = append(delta.Failures, SlotFailure{Slot: slot, Result: res})
		}
	}
	st.Coverage = cov.Snapshot()
	st.Round++
	return delta, nil
}

// MaxStoredFindings caps the kept findings per campaign; failures beyond
// it still count in FindingsSeen.
const MaxStoredFindings = 16

// RecordFinding stores a shrunk finding unless an equal one (same kind and
// shrunk schedule) is already kept or the cap is reached. It reports
// whether the finding was added.
func (st *State) RecordFinding(f Finding) bool {
	if len(st.Findings) >= MaxStoredFindings {
		return false
	}
	key := f.key()
	for i := range st.Findings {
		if st.Findings[i].key() == key {
			return false
		}
	}
	st.Findings = append(st.Findings, f)
	return true
}

// CoverageDigest folds the coverage set to one 64-bit value (see
// explore.Coverage.Digest).
func (st *State) CoverageDigest() uint64 {
	return st.coverage().Digest()
}

// Encode serializes the state as its checkpoint record. The bytes are
// deterministic — struct fields marshal in declared order and every slice
// is in a canonical order — so "resumes byte-identically" is checkable by
// comparing checkpoints.
func (st *State) Encode() ([]byte, error) {
	data, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding state: %w", err)
	}
	return data, nil
}

// DecodeState restores a checkpointed state.
func DecodeState(data []byte) (*State, error) {
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("campaign: decoding state: %w", err)
	}
	st.Spec.Normalize()
	if err := st.Spec.Validate(); err != nil {
		return nil, err
	}
	st.cov = explore.NewCoverageFrom(st.Coverage)
	return &st, nil
}
