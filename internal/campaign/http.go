package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// RegisterRoutes mounts the campaign API on mux:
//
//	POST   /v1/campaigns      start a campaign; idempotent on the content hash
//	GET    /v1/campaigns      list campaigns (findings elided)
//	GET    /v1/campaigns/{id} one campaign's stats and findings
//	DELETE /v1/campaigns/{id} stop a campaign (waits for the final checkpoint)
//
// Everything is JSON; errors are {"error": "..."} with a matching status
// code, the job API's conventions.
func RegisterRoutes(mux *http.ServeMux, m *Manager) {
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding campaign spec: %w", err))
			return
		}
		view, created, err := m.Start(&spec)
		switch {
		case errors.Is(err, ErrShuttingDown):
			httpError(w, http.StatusServiceUnavailable, err)
			return
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// A brand-new campaign answers 201; attaching to (or restarting)
		// an existing one answers 200 — the idempotency signal.
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		writeJSON(w, code, view)
	})

	mux.HandleFunc("GET /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Campaigns []View `json:"campaigns"`
		}{m.List()})
	})

	mux.HandleFunc("GET /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, ok := m.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("DELETE /v1/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, ok := m.Stop(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, view)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
