package campaign

import (
	"context"
	"fmt"
	"math/rand"

	"jayanti98/internal/explore"
	"jayanti98/internal/sweep"
)

// RoundSpec is one round of a campaign in wire form: the campaign spec,
// the round number, and the corpus schedules mutation draws parents from —
// frozen at round start, so every input of the round is a pure function of
// this struct and its slot index. It is the unit internal/dist shards: a
// worker leasing a slice of the round receives the whole corpus in the
// grant (that is how replicas share coverage) and executes its slots
// exactly as the local loop would.
type RoundSpec struct {
	Campaign Spec `json:"campaign"`
	// Round is the 0-based round number; it offsets the global input
	// stream by Round*BatchSize.
	Round int `json:"round"`
	// Corpus holds the interesting schedules known at round start, in
	// corpus insertion order.
	Corpus [][]int `json:"corpus,omitempty"`
}

// Inputs returns the round's input count — the shardable coordinate axis.
func (rs *RoundSpec) Inputs() int { return rs.Campaign.BatchSize }

// InputResult is the outcome of one input slot, in wire form. It carries
// everything the coordinator needs to merge coverage (Trace), evolve the
// corpus (Schedule), and reproduce a failure deterministically elsewhere
// (Schedule + Tosses re-run the exact machine history, per the replay
// contract).
type InputResult struct {
	// Schedule is the executed schedule (delivered pids only).
	Schedule []int `json:"schedule"`
	// Tosses holds the coin tosses each process consumed.
	Tosses [][]int64 `json:"tosses,omitempty"`
	// Trace is the run's state-digest trace, first-reached order.
	Trace []uint64 `json:"trace"`
	// Steps is the number of shared-memory steps executed.
	Steps int `json:"steps"`
	// Completed reports whether every process terminated.
	Completed bool `json:"completed,omitempty"`
	// FailKind/FailDetail describe a detected violation ("" = clean run).
	FailKind   string `json:"failKind,omitempty"`
	FailDetail string `json:"failDetail,omitempty"`
}

// RoundResult is a full round's outcome: one InputResult per slot, in slot
// order. Slot order is the merge order, so the struct is byte-identical no
// matter how the round was sharded.
type RoundResult struct {
	Round   int           `json:"round"`
	Results []InputResult `json:"results"`
}

// ExecuteRound runs every input of the round with at most `parallel`
// workers (sweep.Workers semantics).
func ExecuteRound(ctx context.Context, rs *RoundSpec, parallel int) (*RoundResult, error) {
	results, err := ExecuteRoundSlice(ctx, rs, 0, rs.Inputs(), parallel)
	if err != nil {
		return nil, err
	}
	return &RoundResult{Round: rs.Round, Results: results}, nil
}

// ExecuteRoundSlice runs input slots [lo, hi) of the round and returns
// their results in slot order. Each slot is independent — seeds derive
// from the global slot index, mutation parents come from the frozen
// round-start corpus — so any partition of [0, BatchSize) concatenated in
// slice order reproduces the unsliced round exactly (the dist merge
// property).
func ExecuteRoundSlice(ctx context.Context, rs *RoundSpec, lo, hi, parallel int) ([]InputResult, error) {
	spec := rs.Campaign
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if lo < 0 || hi > spec.BatchSize || lo >= hi {
		return nil, fmt.Errorf("campaign: slot range [%d, %d) outside the %d-input round", lo, hi, spec.BatchSize)
	}
	cfg := spec.ExploreConfig()
	return sweep.MapCtx(ctx, parallel, hi-lo, func(i int) (InputResult, error) {
		slot := lo + i
		global := rs.Round*spec.BatchSize + slot
		seed := sweep.Derive(spec.Seed, global)
		prefix := inputPrefix(rs, seed)
		rec, err := explore.RunGuided(cfg, prefix, seed, spec.TossRange)
		if err != nil {
			return InputResult{}, fmt.Errorf("campaign: round %d slot %d (seed %d): %w", rs.Round, slot, seed, err)
		}
		res := InputResult{
			Schedule:  rec.Schedule,
			Tosses:    rec.Tosses,
			Trace:     rec.Trace,
			Steps:     rec.Steps,
			Completed: rec.Completed,
		}
		if rec.Failure != nil {
			res.FailKind = string(rec.Failure.Kind)
			res.FailDetail = rec.Failure.Detail
		}
		return res, nil
	})
}

// inputPrefix decides the slot's schedule prefix: with a non-empty corpus,
// three in four inputs mutate a corpus parent and the rest stay fresh
// random walks (an exploit/explore split); with an empty corpus every
// input is fresh. The decision RNG derives from the slot seed at index 2 —
// index 1 is the toss stream inside RunGuided — so prefix choice, tosses,
// and the walk are three independent deterministic streams.
func inputPrefix(rs *RoundSpec, seed int64) []int {
	if len(rs.Corpus) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(sweep.Derive(seed, 2)))
	if rng.Intn(4) == 0 {
		return nil
	}
	parent := rs.Corpus[rng.Intn(len(rs.Corpus))]
	return explore.MutateSchedule(rng, parent, rs.Campaign.N)
}
