// Package campaign is the continuous coverage-guided exploration service:
// the OSS-Fuzz shape applied to schedule space. A campaign is a long-lived
// search over the interleavings of one construction/workload pair that
// runs in rounds, indefinitely: each round executes a batch of schedules —
// mutations of corpus entries alongside fresh seeded random walks — and
// keeps the schedules whose state-digest trace (explore.RunGuided) reached
// product states no prior input did. Any linearizability or lemma
// violation is automatically shrunk (explore.ShrinkCtx), persisted as a
// bit-for-bit replay file, and surfaced in the campaign's stats.
//
// Determinism is inherited from the exploration harness and structured the
// same way the sweep engine's is: round r's input slot s derives its
// private seed with sweep.Derive(Spec.Seed, r*BatchSize+s), every input is
// a pure function of (spec, corpus-at-round-start, global slot index), and
// round results are merged in slot order. Corpus evolution is therefore a
// pure function of the spec — independent of worker counts, engines, and
// of which lbworker executed which slice of a round — which is what lets
// rounds ride the internal/dist shard-lease protocol and land in the
// content-addressed cache like any other job, and what makes a checkpoint
// resume byte-identical.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"slices"

	"jayanti98/internal/algos"
	"jayanti98/internal/explore"
	"jayanti98/internal/universal"
)

// Spec describes one campaign. Like a job spec it is content-hashed after
// normalization: the hash is the campaign ID, so resubmitting the same
// campaign attaches to the running one instead of forking a duplicate.
//
// Everything in the Spec participates in determinism — the corpus and
// coverage evolution are a pure function of it. Execution knobs (worker
// counts, checkpoint cadence, findings directory) live in ManagerOptions.
type Spec struct {
	// Alg is the system under test: one of universal.Names(), a zoo
	// algorithm (algos.Names()), or explore.BrokenGroupUpdate when built
	// with -tags mutation. Defaults to "group-update".
	Alg string `json:"alg,omitempty"`
	// Object is the workload (explore.Workloads()). Defaults to
	// "fetch-increment" for constructions and to the algorithm's own
	// workload for zoo entries.
	Object string `json:"object,omitempty"`
	// N is the number of processes (default 2).
	N int `json:"n,omitempty"`
	// OpsPerProc is operations per process (default 1).
	OpsPerProc int `json:"opsPerProc,omitempty"`
	// Budget bounds steps per run (0: automatic, explore.AutoBudget).
	Budget int `json:"budget,omitempty"`
	// Seed is the campaign base seed (default 1). Round r, slot s derives
	// sweep.Derive(Seed, r*BatchSize+s).
	Seed int64 `json:"seed,omitempty"`
	// TossRange is the exclusive upper bound on coin-toss outcomes
	// (default 2: coin flips).
	TossRange int64 `json:"tossRange,omitempty"`
	// BatchSize is the number of inputs per round (default 64). It is
	// part of campaign identity because the seed derivation indexes the
	// global input stream by r*BatchSize+s.
	BatchSize int `json:"batchSize,omitempty"`
	// MaxCorpus bounds the kept corpus (default 32); beyond it the oldest
	// entries are evicted. Eviction order is deterministic (insertion
	// order), so the bound preserves determinism.
	MaxCorpus int `json:"maxCorpus,omitempty"`
	// MaxRounds, when positive, stops the campaign after that many rounds
	// — campaigns run indefinitely by default (0). Useful for tests and
	// smoke runs; part of identity so a bounded campaign is a different
	// campaign than an unbounded one.
	MaxRounds int `json:"maxRounds,omitempty"`
}

// Normalize fills defaults in place so semantically identical specs share
// a campaign ID. It is idempotent.
func (s *Spec) Normalize() {
	if s.Alg == "" {
		s.Alg = "group-update"
	}
	if s.Object == "" {
		if zs, ok := algos.For(s.Alg); ok {
			s.Object = zs.Object
		} else {
			s.Object = "fetch-increment"
		}
	}
	if s.N == 0 {
		s.N = 2
	}
	if s.OpsPerProc == 0 {
		s.OpsPerProc = 1
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.TossRange == 0 {
		s.TossRange = 2
	}
	if s.BatchSize == 0 {
		s.BatchSize = 64
	}
	if s.MaxCorpus == 0 {
		s.MaxCorpus = 32
	}
}

// Validate reports the first problem with the (normalized) spec.
func (s *Spec) Validate() error {
	zs, isZoo := algos.For(s.Alg)
	switch {
	case slices.Contains(universal.Names(), s.Alg):
	case isZoo:
		// Zoo algorithms (including the mutation-build-only broken TV
		// variant, which algos registers conditionally) are first-class
		// campaign targets via the raw explore mode.
	case s.Alg == explore.BrokenGroupUpdate && universal.MutantAvailable:
		// The deliberately broken variant is a first-class campaign target
		// (the smoke test hunts it), but only in -tags mutation builds.
	default:
		return fmt.Errorf("campaign: unknown construction or algorithm %q", s.Alg)
	}
	if !slices.Contains(explore.Workloads(), s.Object) {
		return fmt.Errorf("campaign: unknown workload %q", s.Object)
	}
	if s.N < 2 || s.N > 8 {
		return fmt.Errorf("campaign: n %d out of range [2, 8]", s.N)
	}
	if s.OpsPerProc < 1 || s.OpsPerProc > 8 {
		return fmt.Errorf("campaign: opsPerProc %d out of range [1, 8]", s.OpsPerProc)
	}
	if isZoo {
		// Mirror explore.newRawRunner's constraints at submit time.
		if s.Object != zs.Object {
			return fmt.Errorf("campaign: algorithm %s implements workload %q, got %q", s.Alg, zs.Object, s.Object)
		}
		if s.OpsPerProc != 1 {
			return fmt.Errorf("campaign: algorithm %s is one-shot (opsPerProc must be 1, got %d)", s.Alg, s.OpsPerProc)
		}
		if zs.MaxN > 0 && s.N > zs.MaxN {
			return fmt.Errorf("campaign: algorithm %s supports at most n = %d, got %d", s.Alg, zs.MaxN, s.N)
		}
	}
	if s.Budget < 0 {
		return fmt.Errorf("campaign: budget %d negative", s.Budget)
	}
	if s.TossRange < 1 {
		return fmt.Errorf("campaign: tossRange %d must be >= 1", s.TossRange)
	}
	if s.BatchSize < 1 || s.BatchSize > 4096 {
		return fmt.Errorf("campaign: batchSize %d out of range [1, 4096]", s.BatchSize)
	}
	if s.MaxCorpus < 1 || s.MaxCorpus > 1024 {
		return fmt.Errorf("campaign: maxCorpus %d out of range [1, 1024]", s.MaxCorpus)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("campaign: maxRounds %d negative", s.MaxRounds)
	}
	return nil
}

// ExploreConfig builds the exploration Config the campaign's runs use.
func (s *Spec) ExploreConfig() explore.Config {
	return explore.Config{
		Alg:        s.Alg,
		Object:     s.Object,
		N:          s.N,
		OpsPerProc: s.OpsPerProc,
		Budget:     s.Budget,
	}
}

// ID normalizes and validates the spec and returns its content hash: the
// lowercase hex SHA-256 of the canonical JSON encoding (keys sorted via a
// generic-value round trip, the same scheme job IDs use). The ID doubles
// as the checkpoint key in the jobs cache.
func (s *Spec) ID() (string, error) {
	s.Normalize()
	if err := s.Validate(); err != nil {
		return "", err
	}
	canon, err := canonicalJSON(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalJSON marshals v, re-serializes through a generic value so
// object keys sort, and returns the stable bytes.
func canonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("campaign: canonical encoding: %w", err)
	}
	var generic any
	if err := json.Unmarshal(raw, &generic); err != nil {
		return nil, fmt.Errorf("campaign: canonical encoding: %w", err)
	}
	out, err := json.Marshal(generic)
	if err != nil {
		return nil, fmt.Errorf("campaign: canonical encoding: %w", err)
	}
	return out, nil
}
