package tas

import "testing"

// TestLeafIndex pins the tournament-tree layout: leaves occupy heap
// positions [W, W+n) for W the next power of two ≥ n, so siblings v and
// v^1 contend at parent v/2 and position 1 is the champion slot. n = 1
// degenerates to leaf 1: the lone process is champion after the door read.
func TestLeafIndex(t *testing.T) {
	cases := []struct {
		id, n, want int
	}{
		{0, 1, 1},
		{0, 2, 2}, {1, 2, 3},
		{0, 3, 4}, {2, 3, 6},
		{0, 4, 4}, {3, 4, 7},
		{0, 5, 8}, {4, 5, 12},
		{7, 8, 15},
		{8, 9, 24},
	}
	for _, tc := range cases {
		if got := leafIndex(tc.id, tc.n); got != tc.want {
			t.Errorf("leafIndex(%d, %d) = %d, want %d", tc.id, tc.n, got, tc.want)
		}
	}
}
