package tas_test

import (
	"fmt"
	"testing"

	"jayanti98/internal/algos"
	"jayanti98/internal/explore"
	"jayanti98/internal/lockstep"
)

// asymTosses is the standard livelock-breaking toss assignment for the
// randomized protocols: process pid's j-th toss is (pid + j) mod 2, so at
// every toss index the two contenders of a TV match disagree — one
// retreats, the other holds — and a winner emerges.
func asymTosses(pid, j int) int64 { return int64((pid + j) % 2) }

// mix64 is splitmix64's finalizer (the lockstep fuzz idiom) — derives toss
// outcomes from (seed, pid, j) without shared state.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestLockstepExhaustive proves the bytecode twins equivalent to the
// direct-style bodies over every schedule up to the exploration budget's
// depth: every observable (actions, responses, history digests, register
// files, return values) is compared after every step of every prefix. The
// protocols are not wait-free, so the bounded variant counts schedules the
// depth limit cuts off instead of failing on them. The pinned counts also
// serve as a change detector for the protocols' step structure.
func TestLockstepExhaustive(t *testing.T) {
	cases := []struct {
		alg    string
		n      int
		depth  int
		states int
		runs   int
		trunc  int
		long   bool
	}{
		{alg: "tas-tv", n: 2, depth: 14, states: 236, runs: 18, trunc: 38},
		{alg: "tas-tournament", n: 2, depth: 20, states: 531, runs: 39, trunc: 66},
		{alg: "tas-tournament", n: 3, depth: 28, states: 35017, runs: 544, trunc: 6311, long: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/n=%d", tc.alg, tc.n), func(t *testing.T) {
			if tc.long && testing.Short() {
				t.Skip("long lockstep case skipped in -short mode")
			}
			t.Parallel()
			alg, err := algos.New(tc.alg, tc.n)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := lockstep.ExhaustiveBounded(alg, tc.n, asymTosses, tc.depth)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s n=%d: states=%d runs=%d truncated=%d maxDepth=%d",
				tc.alg, tc.n, stats.States, stats.Runs, stats.Truncated, stats.MaxDepth)
			if stats.Runs == 0 {
				t.Fatalf("no complete runs within depth %d: %+v", tc.depth, stats)
			}
			if tc.states != 0 && (stats.States != tc.states || stats.Runs != tc.runs || stats.Truncated != tc.trunc) {
				t.Errorf("got (states=%d runs=%d truncated=%d), want (states=%d runs=%d truncated=%d)",
					stats.States, stats.Runs, stats.Truncated, tc.states, tc.runs, tc.trunc)
			}
		})
	}
}

// TestLockstepRandomSchedules drives both protocols over random schedules
// and toss streams far past the exhaustive depth — long livelock stretches
// included — asserting engine agreement on every step.
func TestLockstepRandomSchedules(t *testing.T) {
	for _, name := range algos.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, _ := algos.For(name)
			n := 4
			if spec.MaxN > 0 && n > spec.MaxN {
				n = spec.MaxN
			}
			alg, err := algos.New(name, n)
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(0); seed < 50; seed++ {
				schedule := make([]int, 120)
				for i := range schedule {
					schedule[i] = int(mix64(seed<<32^uint64(i)) % uint64(n))
				}
				toss := func(pid, j int) int64 {
					return int64(mix64(seed^uint64(pid)<<32^uint64(j)) & 1)
				}
				if _, err := lockstep.Run(alg, n, schedule, toss); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// FuzzTAS is the zoo's differential fuzz target: the fuzzer picks a
// protocol, a system size, a toss seed, an LL/SC backend and an arbitrary
// schedule; the run is then checked two independent ways — the explore
// harness verifies the history linearizes against the sequential test&set
// spec (on the chosen backend), and the lockstep harness verifies the two
// execution engines agree on every observable at every step. Any
// counterexample is a real protocol, compiler, VM or backend bug.
func FuzzTAS(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint64(0), []byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	f.Add(uint8(1), uint8(1), uint64(7), []byte{2, 0, 1, 2, 2, 0, 1, 1, 0, 2, 1, 1, 2, 0})
	f.Add(uint8(1), uint8(3), uint64(42), []byte{0, 0, 0, 3, 2, 1, 4, 4, 1, 0, 2, 3})
	f.Add(uint8(0), uint8(0), uint64(9), []byte{1, 1, 1, 1, 0, 0, 0, 0, 1, 0, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, algIdx, nRaw uint8, tossSeed uint64, sched []byte) {
		name := "tas-tv"
		n := 2
		if algIdx&1 == 1 {
			name = "tas-tournament"
			n = 2 + int(nRaw)%4 // n ∈ {2..5}
		}
		if len(sched) > 256 {
			sched = sched[:256]
		}
		schedule := make([]int, len(sched))
		for i, b := range sched {
			schedule[i] = int(b) % n
		}
		toss := func(pid, j int) int64 {
			return int64(mix64(tossSeed^uint64(pid)<<32^uint64(j)) & 1)
		}
		backend := "native"
		if tossSeed>>63 == 1 {
			backend = "bw"
		}
		rec, err := explore.RunSchedule(explore.Config{
			Alg: name, Object: "tas", N: n, OpsPerProc: 1,
			LLSC: backend, Tosses: toss,
		}, schedule)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Failure != nil {
			t.Fatalf("%s n=%d [%s]: %v", name, n, backend, rec.Failure)
		}
		alg, err := algos.New(name, n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := lockstep.Run(alg, n, schedule, toss); err != nil {
			t.Fatal(err)
		}
	})
}
