package tas

import "jayanti98/internal/vmachine"

// This file holds the bytecode twins of the TAS algorithms, in the style of
// wakeup/compiled.go: each direct-style body in tas.go is re-expressed as a
// vmachine.Program and compiled once at package init. The re-expression
// preserves the yield sequence exactly — every Swap/Read/Toss in the body
// is one SwapE/ReadE/TossE here, in the same order — and the dynamic types
// of all values (flags are Go ints, toss outcomes int64), so register
// contents, history digests and golden traces are bit-identical across
// engines; package lockstep proves it mechanically.
//
// Tree index arithmetic the expression language lacks (1-id, v^1, v>>1,
// the leaf index) goes through pure natives that mirror the body's local
// computations; natives are not yield points, so they do not perturb the
// action stream.

// registerTreeNatives installs the index-arithmetic natives. It runs once,
// from the compiled-chunk initializer below.
func registerTreeNatives() {
	// tas.opp(): the two-process opponent id, 1 - self.
	vmachine.RegisterNative("tas.opp", func(id, _ int, _ []vmachine.Value) vmachine.Value {
		return vmachine.Int(1 - id)
	})
	// tas.leaf(): the tournament leaf position, leafIndex(self, n).
	vmachine.RegisterNative("tas.leaf", func(id, n int, _ []vmachine.Value) vmachine.Value {
		return vmachine.Int(leafIndex(id, n))
	})
	// tas.sib(v): the sibling position v ^ 1.
	vmachine.RegisterNative("tas.sib", func(_, _ int, args []vmachine.Value) vmachine.Value {
		return vmachine.Int(args[0].AsInt() ^ 1)
	})
	// tas.half(v): the parent position v >> 1.
	vmachine.RegisterNative("tas.half", func(_, _ int, args []vmachine.Value) vmachine.Value {
		return vmachine.Int(args[0].AsInt() >> 1)
	})
}

// Expression shorthands (the wakeup/compiled.go idiom).
func vInt(v int) vmachine.Expr       { return vmachine.ConstE{V: vmachine.Int(v)} }
func vI64(v int64) vmachine.Expr     { return vmachine.ConstE{V: vmachine.I64(v)} }
func vNil() vmachine.Expr            { return vmachine.ConstE{V: vmachine.Nil()} }
func vVar(name string) vmachine.Expr { return vmachine.VarE{Name: name} }

// retreatToss is the `if e.Toss()&1 == 0` condition: toss, mask to the low
// bit, compare against int64(0) — all in KI64, matching the body's types.
func retreatToss() vmachine.Expr {
	return vmachine.EqE{
		A: vmachine.BandE{A: vmachine.TossE{}, B: vI64(1)},
		B: vI64(0),
	}
}

func tvProgram() *vmachine.Program { return tvProgramRet("tas-tv", 0) }

// tvProgramRet parameterizes the winning return value so the mutation
// build can derive the broken twin (winRet 1) from the same program.
func tvProgramRet(name string, winRet int) *vmachine.Program {
	// See tvBody: flag register is self, the opponent's is 1-self.
	me := vmachine.SelfE{}
	return &vmachine.Program{
		Name: name,
		Body: []vmachine.Stmt{
			vmachine.AssignS{Name: "opp", E: vmachine.CallE{Fn: "tas.opp"}},
			vmachine.DoS{E: vmachine.SwapE{Reg: me, Val: vInt(up)}},
			vmachine.LoopS{Body: []vmachine.Stmt{
				vmachine.AssignS{Name: "v", E: vmachine.ReadE{Reg: vVar("opp")}},
				vmachine.IfS{Cond: vmachine.EqE{A: vVar("v"), B: vInt(won)}, Then: []vmachine.Stmt{
					vmachine.ReturnS{E: vInt(1)},
				}},
				vmachine.IfS{
					Cond: vmachine.EqE{A: vVar("v"), B: vInt(up)},
					Then: []vmachine.Stmt{
						vmachine.IfS{Cond: retreatToss(), Then: []vmachine.Stmt{
							vmachine.DoS{E: vmachine.SwapE{Reg: me, Val: vInt(down)}},
							vmachine.AssignS{Name: "v2", E: vmachine.ReadE{Reg: vVar("opp")}},
							vmachine.IfS{Cond: vmachine.EqE{A: vVar("v2"), B: vInt(won)}, Then: []vmachine.Stmt{
								vmachine.ReturnS{E: vInt(1)},
							}},
							vmachine.DoS{E: vmachine.SwapE{Reg: me, Val: vInt(up)}},
						}},
					},
					Else: []vmachine.Stmt{
						vmachine.DoS{E: vmachine.SwapE{Reg: me, Val: vInt(won)}},
						vmachine.ReturnS{E: vInt(winRet)},
					},
				},
			}},
		},
	}
}

func tournamentProgram() *vmachine.Program {
	// See tournamentBody. The match inner loop is tvProgram's loop with the
	// flag register v, the opponent register sib(v), and the loser path
	// marking the doorway.
	sib := func() vmachine.Expr {
		return vmachine.CallE{Fn: "tas.sib", Args: []vmachine.Expr{vVar("v")}}
	}
	lose := []vmachine.Stmt{
		vmachine.DoS{E: vmachine.SwapE{Reg: vInt(doorReg), Val: vInt(1)}},
		vmachine.ReturnS{E: vInt(1)},
	}
	return &vmachine.Program{
		Name: "tas-tournament",
		Body: []vmachine.Stmt{
			vmachine.AssignS{Name: "d", E: vmachine.ReadE{Reg: vInt(doorReg)}},
			vmachine.IfS{
				Cond: vmachine.EqE{A: vVar("d"), B: vNil()},
				Else: []vmachine.Stmt{vmachine.ReturnS{E: vInt(1)}},
			},
			vmachine.AssignS{Name: "v", E: vmachine.CallE{Fn: "tas.leaf"}},
			vmachine.LoopS{Body: []vmachine.Stmt{
				vmachine.IfS{Cond: vmachine.EqE{A: vVar("v"), B: vInt(1)}, Then: []vmachine.Stmt{
					vmachine.ReturnS{E: vInt(0)},
				}},
				vmachine.DoS{E: vmachine.SwapE{Reg: vVar("v"), Val: vInt(up)}},
				vmachine.LoopS{Body: []vmachine.Stmt{
					vmachine.AssignS{Name: "w", E: vmachine.ReadE{Reg: sib()}},
					vmachine.IfS{Cond: vmachine.EqE{A: vVar("w"), B: vInt(won)}, Then: lose},
					vmachine.IfS{
						Cond: vmachine.EqE{A: vVar("w"), B: vInt(up)},
						Then: []vmachine.Stmt{
							vmachine.IfS{Cond: retreatToss(), Then: []vmachine.Stmt{
								vmachine.DoS{E: vmachine.SwapE{Reg: vVar("v"), Val: vInt(down)}},
								vmachine.AssignS{Name: "w2", E: vmachine.ReadE{Reg: sib()}},
								vmachine.IfS{Cond: vmachine.EqE{A: vVar("w2"), B: vInt(won)}, Then: lose},
								vmachine.DoS{E: vmachine.SwapE{Reg: vVar("v"), Val: vInt(up)}},
							}},
						},
						Else: []vmachine.Stmt{
							vmachine.DoS{E: vmachine.SwapE{Reg: vVar("v"), Val: vInt(won)}},
							vmachine.BreakS{},
						},
					},
				}},
				vmachine.AssignS{Name: "v", E: vmachine.CallE{Fn: "tas.half", Args: []vmachine.Expr{vVar("v")}}},
			}},
		},
	}
}

// compileChunks registers the natives and compiles both programs; running
// it from the var initializer guarantees registration precedes compilation
// regardless of file order.
func compileChunks() (tvC, tournamentC *vmachine.Chunk) {
	registerTreeNatives()
	return vmachine.MustCompile(tvProgram()), vmachine.MustCompile(tournamentProgram())
}

var tvChunk, tournamentChunk = compileChunks()
