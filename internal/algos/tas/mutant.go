//go:build mutation

package tas

import (
	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
	"jayanti98/internal/vmachine"
)

// MutantAvailable reports whether the broken variant is compiled in.
const MutantAvailable = true

// BrokenTV is tvBody with the winner lost: the process that decides the
// match still writes the `won` marker (so the protocol terminates exactly
// like the correct one) but returns 1 — every process reports "lost", the
// history has no winner, and no linearization of test&set can produce it
// (the first operation must return 0). The explore harness must flag every
// completed run of this variant as non-linearizable; mutant_test.go holds
// it to that.
func BrokenTV() machine.Algorithm {
	return machine.NewCompiled("tas-tv-broken", brokenTVBody, brokenTVChunk)
}

func brokenTVBody(e *machine.Env) shmem.Value {
	me := e.ID()
	opp := 1 - me
	e.Swap(me, up)
	for {
		v := e.Read(opp)
		if v == won {
			return 1
		}
		if v != up {
			e.Swap(me, won)
			return 1 // MUTANT: the winner misreports itself as a loser
		}
		if e.Toss()&1 == 0 {
			e.Swap(me, down)
			if e.Read(opp) == won {
				return 1
			}
			e.Swap(me, up)
		}
	}
}

// brokenTVChunk is the bytecode twin: tvProgram with the winning return
// value patched from 0 to 1, so the mutant is detected on both engines.
var brokenTVChunk = vmachine.MustCompile(tvProgramRet("tas-tv-broken", 1))
