// Package tas implements randomized test-and-set algorithms from the
// related work (PAPERS.md) as machine.Algorithm values: a Tromp–Vitányi
// style two-process TAS built from the paper's shared-memory operations,
// and a Giakkoupis–Woelfel style tournament-tree TAS that composes the
// two-process protocol up a binary tree for arbitrary n.
//
// Both are randomized: a process that sees its opponent's flag up tosses a
// coin to decide between holding its flag and retreating (lowering it,
// re-checking, and raising it again). Against an adversary that always
// schedules the two contenders in lockstep with identical coin outcomes the
// protocol livelocks — that is the price of randomized TAS from registers
// and swaps (deterministic wait-free TAS does not exist in this model) —
// but any asymmetry in the toss streams breaks the symmetry and one process
// wins. Coin tosses go through machine.Env.Toss, so the exploration
// harness's adversary schedules stay deterministic per toss-stream, and
// exhaustive search treats an exhausted step budget as a truncated (not
// failed) run.
//
// The no-double-winner argument for one match is the Tromp–Vitányi
// invariant: a process wins only after reading the opponent's flag as
// absent (nil) or down while its own flag has been continuously up since it
// last raised it. If both won, each one's decisive read preceded the
// other's last raise, which precedes the other's decisive read — a cycle in
// the real-time order. The loser learns the outcome from the winner's `won`
// marker. In the tournament, at most the winners of the two child subtrees
// ever contend at a node, so every match is two-process; the doorway
// register makes the composition linearizable: a process that finds the
// doorway marked loses immediately, and every loser marks the doorway
// before returning, so no loser can complete strictly before the eventual
// winner takes its first step.
//
// Each algorithm is a machine.NewCompiled pair — a direct-style Go body and
// a vmachine program compiled at package init — so it runs on either
// engine; package lockstep holds the two forms step-equivalent.
package tas

import (
	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

// Flag values of one two-process match. Registers start nil (no flag).
const (
	up   = 1 // contending
	down = 2 // retreated
	won  = 3 // match decided: the register's owner advanced
)

// doorReg is the tournament's doorway register: nil until the first loser
// marks it. Match flags live at registers 2..2W-1 (register v is the flag
// of position v's occupant; positions v and v^1 contend at their parent),
// so the doorway never collides with a flag.
const doorReg = 0

// TrompVitanyi returns the two-process randomized test-and-set: process
// pid's flag is register pid, the winner returns 0, the loser 1. Valid for
// n ≤ 2 (algos.New enforces it); at n = 1 the solo process reads the
// absent opponent flag and wins in 3 steps.
func TrompVitanyi() machine.Algorithm {
	return machine.NewCompiled("tas-tv", tvBody, tvChunk)
}

func tvBody(e *machine.Env) shmem.Value {
	me := e.ID()
	opp := 1 - me
	e.Swap(me, up)
	for {
		v := e.Read(opp)
		if v == won {
			return 1
		}
		if v != up { // absent or down: the opponent is out of the way
			e.Swap(me, won)
			return 0
		}
		if e.Toss()&1 == 0 { // retreat
			e.Swap(me, down)
			if e.Read(opp) == won {
				return 1
			}
			e.Swap(me, up)
		}
	}
}

// Tournament returns the tournament-tree randomized test-and-set for any
// n ≥ 1: leaves are positions W+pid (W the next power of two ≥ n), and the
// winner of the match between positions v and v^1 advances to position
// v/2; the occupant of position 1 is the champion and returns 0. A process
// that loses a match marks the doorway and returns 1; a process that finds
// the doorway already marked returns 1 in one shared access.
func Tournament() machine.Algorithm {
	return machine.NewCompiled("tas-tournament", tournamentBody, tournamentChunk)
}

func tournamentBody(e *machine.Env) shmem.Value {
	if e.Read(doorReg) != nil { // doorway: somebody already lost, so somebody won
		return 1
	}
	v := leafIndex(e.ID(), e.N())
	for {
		if v == 1 {
			return 0 // champion
		}
		e.Swap(v, up)
		for {
			w := e.Read(v ^ 1)
			if w == won { // the sibling advanced: this match is lost
				e.Swap(doorReg, 1)
				return 1
			}
			if w != up { // absent or down: free to take the match
				e.Swap(v, won)
				break
			}
			if e.Toss()&1 == 0 { // retreat
				e.Swap(v, down)
				if e.Read(v^1) == won {
					e.Swap(doorReg, 1)
					return 1
				}
				e.Swap(v, up)
			}
		}
		v >>= 1
	}
}

// leafIndex returns the tree position process id starts at: W + id for W
// the smallest power of two ≥ n (so sibling positions differ in the last
// bit and halving walks toward the root at position 1).
func leafIndex(id, n int) int {
	w := 1
	for w < n {
		w <<= 1
	}
	return w + id
}
