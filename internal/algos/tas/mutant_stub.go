//go:build !mutation

package tas

import "jayanti98/internal/machine"

// MutantAvailable reports whether the broken variant is compiled in.
const MutantAvailable = false

// BrokenTV is only available under -tags mutation.
func BrokenTV() machine.Algorithm {
	panic("tas: BrokenTV requires -tags mutation")
}
