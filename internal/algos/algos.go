// Package algos is the registry of the related-work algorithm zoo: shared
// objects implemented directly as machine.Algorithm protocols, as opposed
// to the oblivious universal constructions of package universal. Where a
// universal construction turns any sequential type into a shared object,
// each algorithm here implements one specific type — currently the
// randomized test-and-set protocols of package algos/tas — and the
// harnesses check it against that type's sequential spec (package objtype)
// with the same linearizability machinery the constructions use.
//
// The registry mirrors universal.New/Names so CLIs (cmd/explore,
// cmd/wakeupsim), fuzz targets, the exploration harness and the job/
// campaign validators enumerate the zoo instead of hard-coding names.
package algos

import (
	"fmt"
	"strings"

	"jayanti98/internal/algos/tas"
	"jayanti98/internal/machine"
	"jayanti98/internal/objtype"
)

// Spec describes one registered algorithm: how to build it, the sequential
// type it implements, and the exploration parameters that differ from the
// wait-free universal constructions.
type Spec struct {
	// Name is the registry key (the -alg spelling).
	Name string
	// Object is the explore workload the algorithm implements ("tas"):
	// exploration runs it only under this workload name.
	Object string
	// Op is the one operation a process's whole run represents.
	Op objtype.Op
	// Type builds the sequential spec instance for n processes.
	Type func(n int) objtype.Type
	// New builds the algorithm (a machine.NewCompiled pair, so it runs on
	// both engines).
	New func(n int) machine.Algorithm
	// MaxN bounds the process count (0: unbounded). The Tromp–Vitányi
	// protocol is inherently two-process.
	MaxN int
	// Budget is the default exploration step budget at n. The randomized
	// algorithms are not wait-free — a symmetric schedule with symmetric
	// tosses livelocks — so exhausting the budget truncates a run instead
	// of failing it, and the budget directly bounds exhaustive search
	// depth. Values are sized so TestExhaustiveGolden stays fast while
	// still containing complete runs.
	Budget func(n int) int
}

// specs lists the zoo in presentation order. The mutation build adds the
// deliberately broken TV variant (mutant.go in algos/tas).
var specs = buildSpecs()

func buildSpecs() []Spec {
	tasType := func(n int) objtype.Type { return objtype.NewTAS() }
	tasOp := objtype.Op{Name: objtype.OpTestAndSet}
	out := []Spec{
		{
			Name:   "tas-tv",
			Object: "tas",
			Op:     tasOp,
			Type:   tasType,
			New:    func(int) machine.Algorithm { return tas.TrompVitanyi() },
			MaxN:   2,
			Budget: func(n int) int { return 14 },
		},
		{
			Name:   "tas-tournament",
			Object: "tas",
			Op:     tasOp,
			Type:   tasType,
			New:    func(int) machine.Algorithm { return tas.Tournament() },
			Budget: func(n int) int { return 8*n + 4 },
		},
	}
	if tas.MutantAvailable {
		out = append(out, Spec{
			Name:   BrokenTV,
			Object: "tas",
			Op:     tasOp,
			Type:   tasType,
			New:    func(int) machine.Algorithm { return tas.BrokenTV() },
			MaxN:   2,
			Budget: func(n int) int { return 14 },
		})
	}
	return out
}

// BrokenTV names the deliberately broken TV variant (tas.BrokenTV, behind
// the "mutation" build tag) that mislabels the winner; the harness's own
// tests use it to prove the TAS checking actually detects bugs.
const BrokenTV = "tas-tv-broken"

// Names lists the registered algorithms in presentation order — the
// accepted names for New and For.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// For returns the named spec, if registered.
func For(name string) (Spec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// New builds the named algorithm for n processes, enforcing the spec's
// process-count bound.
func New(name string, n int) (machine.Algorithm, error) {
	s, ok := For(name)
	if !ok {
		return nil, fmt.Errorf("algos: unknown algorithm %q (want %s)", name, strings.Join(Names(), ", "))
	}
	if n < 1 {
		return nil, fmt.Errorf("algos: %s needs n >= 1, got %d", name, n)
	}
	if s.MaxN > 0 && n > s.MaxN {
		return nil, fmt.Errorf("algos: %s supports at most n = %d processes, got %d", name, s.MaxN, n)
	}
	return s.New(n), nil
}
