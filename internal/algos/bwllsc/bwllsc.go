// Package bwllsc implements the paper's LL/SC shared memory on top of
// pointer-width compare&swap, following the tag-free construction of
// Blelloch and Wei ("LL/SC and Atomic Copy: Constant Time, Space Efficient
// Implementations Using Only Pointer-Width CAS", DISC 2020; see PAPERS.md):
// every write installs a freshly allocated immutable node, LL announces the
// node it read, and SC is a single CAS that succeeds exactly when the head
// still is the announced node. Freshness is what defeats ABA — a node that
// has left the head can never be reinstalled, because all installs allocate
// — and Go's garbage collector plays the role of the paper's constant-time
// reclamation scheme (nodes stay alive exactly while some announcement can
// still reference them).
//
// The package is an alternative llsc.Backend: it exposes the same surface
// as the native mutex-guarded register file (N, Handle/Apply, Steps,
// Fingerprint, AppendFingerprint, ReadQuiesced) and is held byte-identical
// to it — same responses, same step counts, same fingerprint bytes, and
// therefore the same exploration memo keys — by the differential harness in
// this package's tests and the `make tas-equivalence` CI step. The native
// validity set (pset) is never stored: a process's LL is valid exactly when
// its announced node still is the head, so the pset is derived on demand
// when fingerprinting.
//
// Swap installs a fresh node in a CAS retry loop. Move — an inter-register
// operation outside the scope of the original construction — reads the
// source head and installs a copy at the destination; the two accesses are
// not one atomic action, so move is atomic only under the step-driven
// executors (sched.Execute, package explore, the lower-bound adversary),
// which serialize shared-memory operations. Those are exactly the drivers
// this backend is selectable from.
package bwllsc

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"jayanti98/internal/llsc"
	"jayanti98/internal/machine"
	"jayanti98/internal/shmem"
)

// node is one immutable register version. Identity (pointer equality) is
// what LL announces and SC CASes on; the value never changes after
// allocation.
type node struct {
	val shmem.Value
}

// register is one Blelloch–Wei LL/SC object: the current version and one
// announcement slot per process. head is never nil once the register is
// allocated; ann[p] is nil until p's first LL.
type register struct {
	head atomic.Pointer[node]
	ann  []atomic.Pointer[node]
}

// pset derives the native backend's validity set: the processes whose
// announced node still is the head.
func (r *register) pset() shmem.PidBits {
	var set shmem.PidBits
	h := r.head.Load()
	for p := range r.ann {
		if r.ann[p].Load() == h {
			set.Add(p)
		}
	}
	return set
}

// Memory is a Blelloch–Wei LL/SC shared memory for n processes. It
// implements llsc.Backend. The registry (lazy register allocation, step
// counters, fingerprint scratch) is mutex-guarded exactly like the native
// backend; the per-register operations themselves are CAS-based.
type Memory struct {
	n  int
	mu sync.Mutex
	// regs is the lazily allocated unbounded register file.
	regs map[int]*register
	// touched holds the allocated register indices in increasing order,
	// maintained on first touch so fingerprinting never sorts.
	touched []int
	// steps counts shared accesses per pid.
	steps map[int]int64
	// initVal optionally initializes registers on first touch.
	initVal func(reg int) shmem.Value
	// fpScratch is the reused value-rendering buffer of AppendFingerprint.
	fpScratch []byte
}

var _ llsc.Backend = (*Memory)(nil)

// Option configures a Memory.
type Option func(*Memory)

// WithInit sets the initial value of every register as a pure function of
// its index (default: nil).
func WithInit(f func(reg int) shmem.Value) Option {
	return func(m *Memory) { m.initVal = f }
}

// New creates a Blelloch–Wei LL/SC memory for n processes.
func New(n int, opts ...Option) *Memory {
	m := &Memory{
		n:     n,
		regs:  make(map[int]*register),
		steps: make(map[int]int64),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// N returns the number of processes the memory was created for.
func (m *Memory) N() int { return m.n }

// reg returns register i, allocating it — with its initial version node —
// on first touch. Callers hold mu.
func (m *Memory) reg(i int) *register {
	r, ok := m.regs[i]
	if !ok {
		r = &register{ann: make([]atomic.Pointer[node], m.n)}
		var init shmem.Value
		if m.initVal != nil {
			init = m.initVal(i)
		}
		r.head.Store(&node{val: init})
		m.regs[i] = r
		at := sort.SearchInts(m.touched, i)
		m.touched = append(m.touched, 0)
		copy(m.touched[at+1:], m.touched[at:])
		m.touched[at] = i
	}
	return r
}

// enter charges pid one shared access and returns register i, allocating it
// if needed. It is the bookkeeping prologue every operation runs under the
// registry lock before touching the register's atomics.
func (m *Memory) enter(pid, i int) *register {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps[pid]++
	return m.reg(i)
}

// Handle returns the port of process pid. A handle must only be used by one
// goroutine at a time (per the model, a process is sequential), but
// distinct handles may be used concurrently.
func (m *Memory) Handle(pid int) *Handle {
	if pid < 0 || pid >= m.n {
		panic(fmt.Sprintf("bwllsc: pid %d out of range [0,%d)", pid, m.n))
	}
	return &Handle{mem: m, pid: pid}
}

// Steps returns pid's shared-access step count.
func (m *Memory) Steps(pid int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.steps[pid]
}

// TotalSteps returns the total shared-access step count.
func (m *Memory) TotalSteps() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, s := range m.steps {
		total += s
	}
	return total
}

// Apply performs op on behalf of pid and returns the response, with the
// exact semantics of shmem.Memory.Apply (including the self-move no-op).
// It makes *Memory implement sched.Memory and llsc.Backend.
func (m *Memory) Apply(pid int, op shmem.Op) shmem.Response {
	h := Handle{mem: m, pid: pid}
	switch op.Kind {
	case shmem.OpLL:
		return shmem.Response{OK: true, Val: h.LL(op.Reg)}
	case shmem.OpSC:
		ok, prev := h.SC(op.Reg, op.Arg)
		return shmem.Response{OK: ok, Val: prev}
	case shmem.OpValidate:
		ok, v := h.Validate(op.Reg)
		return shmem.Response{OK: ok, Val: v}
	case shmem.OpSwap:
		return shmem.Response{OK: true, Val: h.Swap(op.Reg, op.Arg)}
	case shmem.OpMove:
		h.Move(op.Src, op.Reg)
		return shmem.Response{OK: true}
	default:
		panic(fmt.Sprintf("bwllsc: unknown op kind %v", op.Kind))
	}
}

// Fingerprint renders the full memory state — every touched register's
// value and derived pset, in register order — exactly as the native
// backend's Fingerprint does.
func (m *Memory) Fingerprint() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	for _, i := range m.touched {
		r := m.regs[i]
		fmt.Fprintf(&b, "R%d=%v pset=%v;", i, r.head.Load().val, r.pset().Sorted())
	}
	return b.String()
}

// AppendFingerprint appends the compact binary state rendering in the exact
// byte format of the native backend (llsc.Memory.AppendFingerprint): a
// uvarint register count, then per touched register a uvarint index, the
// length-prefixed %v rendering of the value, and the canonical derived-pset
// bitset words. Byte identity here is what makes exploration memo keys —
// and therefore exhaustive state/run counts — backend-independent.
func (m *Memory) AppendFingerprint(dst []byte) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	dst = binary.AppendUvarint(dst, uint64(len(m.touched)))
	for _, i := range m.touched {
		r := m.regs[i]
		dst = binary.AppendUvarint(dst, uint64(i))
		m.fpScratch = fmt.Appendf(m.fpScratch[:0], "%v", r.head.Load().val)
		dst = binary.AppendUvarint(dst, uint64(len(m.fpScratch)))
		dst = append(dst, m.fpScratch...)
		dst = r.pset().AppendBinary(dst)
	}
	return dst
}

// ReadQuiesced returns the value of register i without charging a step.
// Reading an untouched register returns its initial value without
// allocating it, so the fingerprint is unchanged.
func (m *Memory) ReadQuiesced(i int) shmem.Value {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.regs[i]; ok {
		return r.head.Load().val
	}
	if m.initVal != nil {
		return m.initVal(i)
	}
	return nil
}

// Handle is one process's port to the memory. It implements machine.Port.
type Handle struct {
	mem *Memory
	pid int
}

var _ machine.Port = (*Handle)(nil)

// ID implements machine.Port.
func (h *Handle) ID() int { return h.pid }

// N implements machine.Port.
func (h *Handle) N() int { return h.mem.n }

// LL implements machine.Port: read the head and announce it.
func (h *Handle) LL(reg int) shmem.Value {
	r := h.mem.enter(h.pid, reg)
	n := r.head.Load()
	r.ann[h.pid].Store(n)
	return n.val
}

// SC implements machine.Port: one CAS from the announced node to a fresh
// node. It succeeds exactly when no write intervened since the announcing
// LL — fresh allocation guarantees the announced node cannot have been
// reinstalled. A failed SC reports the current value, like the native
// backend.
func (h *Handle) SC(reg int, v shmem.Value) (bool, shmem.Value) {
	r := h.mem.enter(h.pid, reg)
	exp := r.ann[h.pid].Load()
	if exp != nil && r.head.CompareAndSwap(exp, &node{val: v}) {
		return true, exp.val
	}
	return false, r.head.Load().val
}

// Validate implements machine.Port: the link is valid exactly when the
// announced node still is the head.
func (h *Handle) Validate(reg int) (bool, shmem.Value) {
	r := h.mem.enter(h.pid, reg)
	n := r.head.Load()
	exp := r.ann[h.pid].Load()
	return exp == n, n.val
}

// Read implements machine.Port (a validate with the boolean dropped).
func (h *Handle) Read(reg int) shmem.Value {
	_, v := h.Validate(reg)
	return v
}

// Swap implements machine.Port: unconditionally install a fresh node,
// retrying the CAS until it lands. Installing a fresh node is what
// invalidates every outstanding LL, mirroring the native pset clear.
func (h *Handle) Swap(reg int, v shmem.Value) shmem.Value {
	r := h.mem.enter(h.pid, reg)
	fresh := &node{val: v}
	for {
		old := r.head.Load()
		if r.head.CompareAndSwap(old, fresh) {
			return old.val
		}
	}
}

// Move implements machine.Port. A self-move is a complete no-op (it charges
// a step but allocates no register, like the native backend). See the
// package comment for move's atomicity caveat.
func (h *Handle) Move(src, dst int) {
	m := h.mem
	m.mu.Lock()
	m.steps[h.pid]++
	if src == dst {
		m.mu.Unlock()
		return
	}
	s := m.reg(src)
	d := m.reg(dst)
	m.mu.Unlock()
	v := s.head.Load().val
	fresh := &node{val: v}
	for {
		old := d.head.Load()
		if d.head.CompareAndSwap(old, fresh) {
			return
		}
	}
}
