package bwllsc_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"jayanti98/internal/algos/bwllsc"
	"jayanti98/internal/llsc"
	"jayanti98/internal/shmem"
)

// TestSemantics walks the LL/SC contract by hand on the pointer-based
// implementation: a successful SC requires a link, succeeds exactly once
// per installed version, and breaks every other process's link to that
// version; Swap and Move break all links; a self-move is a charged no-op.
func TestSemantics(t *testing.T) {
	m := bwllsc.New(3)
	h0, h1 := m.Handle(0), m.Handle(1)

	if ok, _ := h0.SC(0, 9); ok {
		t.Fatal("SC without LL succeeded")
	}
	if v := h0.LL(0); v != nil {
		t.Fatalf("initial LL = %v, want nil", v)
	}
	if v := h1.LL(0); v != nil {
		t.Fatalf("initial LL = %v, want nil", v)
	}
	if ok, prev := h0.SC(0, 10); !ok || prev != nil {
		t.Fatalf("linked SC = (%v, %v), want (true, nil)", ok, prev)
	}
	// h0's own SC consumed the version: a second SC from h0 must fail, and
	// h1's link to the old version is broken.
	if ok, prev := h0.SC(0, 11); ok || prev != 10 {
		t.Fatalf("repeat SC = (%v, %v), want (false, 10)", ok, prev)
	}
	if ok, cur := h1.Validate(0); ok || cur != 10 {
		t.Fatalf("stale Validate = (%v, %v), want (false, 10)", ok, cur)
	}
	if ok, _ := h1.SC(0, 12); ok {
		t.Fatal("stale SC succeeded")
	}

	// Swap breaks links.
	h0.LL(0)
	if prev := h1.Swap(0, 20); prev != 10 {
		t.Fatalf("Swap prev = %v, want 10", prev)
	}
	if ok, _ := h0.SC(0, 13); ok {
		t.Fatal("SC after Swap succeeded")
	}

	// Move copies the source value and breaks destination links.
	h0.LL(1)
	h1.Move(0, 1)
	if ok, cur := h0.Validate(1); ok || cur != 20 {
		t.Fatalf("Validate after Move = (%v, %v), want (false, 20)", ok, cur)
	}
	if v := h0.Read(1); v != 20 {
		t.Fatalf("Read = %v, want 20", v)
	}

	// Self-move: charged, value and links untouched.
	h0.LL(1)
	before := m.Steps(0)
	h0.Move(1, 1)
	if m.Steps(0) != before+1 {
		t.Fatal("self-move was not charged a step")
	}
	if ok, cur := h0.Validate(1); !ok || cur != 20 {
		t.Fatalf("Validate after self-move = (%v, %v), want (true, 20)", ok, cur)
	}
}

// TestDifferentialAgainstNative is the core backend claim, op by op: an
// identical operation sequence applied to the pset-based llsc.Memory and to
// this package's pointer-based Memory yields identical responses, identical
// per-process step counts, and — after every single operation — a byte-
// identical fingerprint. The fingerprint comparison is what makes the two
// backends interchangeable inside the exploration harness's memoization.
func TestDifferentialAgainstNative(t *testing.T) {
	const npids, nregs = 4, 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := llsc.New(npids)
		b := bwllsc.New(npids)
		for step := 0; step < 400; step++ {
			pid := rng.Intn(npids)
			reg := rng.Intn(nregs)
			op := shmem.Op{Reg: reg}
			switch rng.Intn(5) {
			case 0:
				op.Kind = shmem.OpLL
			case 1:
				op.Kind, op.Arg = shmem.OpSC, rng.Intn(100)
			case 2:
				op.Kind = shmem.OpValidate
			case 3:
				op.Kind, op.Arg = shmem.OpSwap, rng.Intn(100)
			case 4:
				op.Kind, op.Src = shmem.OpMove, rng.Intn(nregs)
			}
			ra, rb := a.Apply(pid, op), b.Apply(pid, op)
			if ra.OK != rb.OK || !shmem.ValuesEqual(ra.Val, rb.Val) {
				t.Logf("seed %d step %d %v: native %v, bw %v", seed, step, op, ra, rb)
				return false
			}
			if !bytes.Equal(a.AppendFingerprint(nil), b.AppendFingerprint(nil)) {
				t.Logf("seed %d step %d %v: fingerprints diverge:\n  native %q\n  bw     %q",
					seed, step, op, a.Fingerprint(), b.Fingerprint())
				return false
			}
		}
		if a.TotalSteps() != b.TotalSteps() {
			return false
		}
		for pid := 0; pid < npids; pid++ {
			if a.Steps(pid) != b.Steps(pid) {
				return false
			}
		}
		for reg := 0; reg < nregs; reg++ {
			if !shmem.ValuesEqual(a.ReadQuiesced(reg), b.ReadQuiesced(reg)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintAllocationParity pins the subtle half of byte-identity:
// the fingerprint only covers *touched* registers, so the two backends must
// allocate on exactly the same operations. Validate on a fresh register
// allocates it; ReadQuiesced does not; a self-move charges a step but does
// not allocate.
func TestFingerprintAllocationParity(t *testing.T) {
	a, b := llsc.New(2), bwllsc.New(2)
	check := func(label string) {
		t.Helper()
		if !bytes.Equal(a.AppendFingerprint(nil), b.AppendFingerprint(nil)) {
			t.Fatalf("%s: fingerprints diverge:\n  native %q\n  bw     %q", label, a.Fingerprint(), b.Fingerprint())
		}
	}
	check("empty")
	if a.ReadQuiesced(3) != b.ReadQuiesced(3) {
		t.Fatal("ReadQuiesced diverges")
	}
	check("after ReadQuiesced")
	a.Apply(0, shmem.Op{Kind: shmem.OpValidate, Reg: 7})
	b.Apply(0, shmem.Op{Kind: shmem.OpValidate, Reg: 7})
	check("after Validate on fresh register")
	a.Apply(1, shmem.Op{Kind: shmem.OpMove, Src: 2, Reg: 2})
	b.Apply(1, shmem.Op{Kind: shmem.OpMove, Src: 2, Reg: 2})
	check("after self-move on fresh register")
	if a.Steps(1) != 1 || b.Steps(1) != 1 {
		t.Fatalf("self-move step accounting: native %d, bw %d, want 1", a.Steps(1), b.Steps(1))
	}
}

// TestWithInit mirrors llsc.WithInit: initial register values come from the
// option and show up in fingerprints identically on both backends.
func TestWithInit(t *testing.T) {
	init := func(reg int) shmem.Value { return reg * 10 }
	a := llsc.New(2, llsc.WithInit(init))
	b := bwllsc.New(2, bwllsc.WithInit(init))
	op := shmem.Op{Kind: shmem.OpValidate, Reg: 3}
	if ra, rb := a.Apply(0, op), b.Apply(0, op); ra.Val != 30 || rb.Val != 30 {
		t.Fatalf("initial values = %v / %v, want 30", ra.Val, rb.Val)
	}
	if !bytes.Equal(a.AppendFingerprint(nil), b.AppendFingerprint(nil)) {
		t.Fatalf("fingerprints diverge:\n  native %q\n  bw     %q", a.Fingerprint(), b.Fingerprint())
	}
}

// TestBackendInterface pins both memories to the shared Backend surface the
// exploration harness selects between.
func TestBackendInterface(t *testing.T) {
	var _ llsc.Backend = llsc.New(2)
	var _ llsc.Backend = bwllsc.New(2)
	for _, tc := range []struct {
		in   string
		want llsc.BackendKind
		ok   bool
	}{
		{"", llsc.DefaultBackend(), true},
		{"native", llsc.BackendNative, true},
		{"bw", llsc.BackendBW, true},
		{"blelloch-wei", llsc.BackendBW, true},
		{"bogus", 0, false},
	} {
		got, err := llsc.ParseBackend(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseBackend(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
