// Package moveplan implements Section 4 of the paper: scheduling move
// operations so that they reveal as little information as possible.
//
// Given (S, f) — a set S of processes each holding one pending
// move(R_src, R_dst) operation described by f — a complete schedule is an
// ordering of S. After executing a schedule σ, each register R ends up
// holding the original value of source(R, σ, (S,f)), and the chain of
// processes whose moves carried that value is movers(R, σ, (S,f)).
//
// A schedule is *secretive* when every register's movers chain has at most
// two processes (Lemma 4.1 shows one always exists; Figure 1 constructs it).
// Lemma 4.2 is the payoff: scheduling only a subset S' ⊇ movers(R, σ) moves
// the same value into R, which is what lets the (S,A)-run of Section 5
// mimic the (All,A)-run with few processes.
package moveplan

import (
	"fmt"
	"sort"
)

// Move is one pending move operation: value(Src) is to be copied into Dst.
type Move struct {
	Src int
	Dst int
}

// String renders the move in the paper's notation.
func (m Move) String() string { return fmt.Sprintf("move(R%d, R%d)", m.Src, m.Dst) }

// Plan is the pair (S, f): the processes with pending moves and their
// operations. The zero Plan has no moves.
type Plan map[int]Move

// Pids returns the processes of the plan in increasing order.
func (p Plan) Pids() []int {
	pids := make([]int, 0, len(p))
	for pid := range p {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	return pids
}

// Schedule is an ordering of (a subset of) the plan's processes.
type Schedule []int

// Restrict returns σ|A: the subsequence of s containing exactly the
// processes in keep.
func (s Schedule) Restrict(keep map[int]bool) Schedule {
	out := make(Schedule, 0, len(s))
	for _, pid := range s {
		if keep[pid] {
			out = append(out, pid)
		}
	}
	return out
}

// Tracker computes source(R, σ, (S,f)) and movers(R, σ, (S,f)) incrementally
// as a schedule is applied, following the inductive definition of Section 4.
type Tracker struct {
	plan   Plan
	source map[int]int   // destination register → original source register
	movers map[int][]int // destination register → chain of movers
}

// NewTracker starts tracking the empty schedule λ for the given plan:
// source(R, λ) = R and movers(R, λ) = λ for every register.
func NewTracker(plan Plan) *Tracker {
	return &Tracker{
		plan:   plan,
		source: make(map[int]int),
		movers: make(map[int][]int),
	}
}

// Apply extends the tracked schedule with process pid (σ := σ·p).
// It panics if pid has no move in the plan — that is a caller bug.
//
// A self-move move(R, R) is tracked as a no-op: the register's value is
// unchanged, so no information is carried and neither source nor movers
// change. (The paper's inductive definition implicitly assumes src ≠ dst;
// taken literally it would grow an unbounded movers chain for repeated
// self-moves on one register even though a later reader learns nothing,
// falsifying Lemma 4.1. Treating self-moves as value-preserving no-ops
// restores the lemma and matches the operational semantics exactly.)
func (t *Tracker) Apply(pid int) {
	mv, ok := t.plan[pid]
	if !ok {
		panic(fmt.Sprintf("moveplan: process %d has no move in the plan", pid))
	}
	if mv.Src == mv.Dst {
		return
	}
	srcOfSrc := t.Source(mv.Src)
	moversOfSrc := t.Movers(mv.Src)
	chain := make([]int, 0, len(moversOfSrc)+1)
	chain = append(chain, moversOfSrc...)
	chain = append(chain, pid)
	t.source[mv.Dst] = srcOfSrc
	t.movers[mv.Dst] = chain
}

// Source returns source(R, σ) for the schedule applied so far.
func (t *Tracker) Source(reg int) int {
	if s, ok := t.source[reg]; ok {
		return s
	}
	return reg
}

// Movers returns movers(R, σ) for the schedule applied so far. The returned
// slice must not be modified.
func (t *Tracker) Movers(reg int) []int {
	return t.movers[reg]
}

// Eval applies an entire schedule and returns the tracker.
func Eval(plan Plan, sigma Schedule) *Tracker {
	t := NewTracker(plan)
	for _, pid := range sigma {
		t.Apply(pid)
	}
	return t
}

// SourceAndMovers is a convenience wrapper: it evaluates σ on the plan and
// returns source(reg, σ) and movers(reg, σ).
func SourceAndMovers(plan Plan, sigma Schedule, reg int) (src int, movers []int) {
	t := Eval(plan, sigma)
	return t.Source(reg), t.Movers(reg)
}

// IsComplete reports whether σ is a complete schedule with respect to the
// plan: every process of the plan appears exactly once.
func IsComplete(plan Plan, sigma Schedule) bool {
	if len(sigma) != len(plan) {
		return false
	}
	seen := make(map[int]bool, len(sigma))
	for _, pid := range sigma {
		if _, ok := plan[pid]; !ok || seen[pid] {
			return false
		}
		seen[pid] = true
	}
	return true
}

// IsSecretive reports whether σ is a secretive complete schedule: complete,
// and every register's movers chain has at most two processes.
func IsSecretive(plan Plan, sigma Schedule) bool {
	if !IsComplete(plan, sigma) {
		return false
	}
	t := Eval(plan, sigma)
	for _, mv := range plan {
		if len(t.Movers(mv.Dst)) > 2 {
			return false
		}
	}
	return true
}

// Secretive constructs a secretive complete schedule for the plan using the
// two-stage algorithm of Figure 1. Stage one repeatedly finds an unscheduled
// process p whose source register's movers chain is still empty, then
// schedules every unscheduled process with p's destination register, p last;
// stage two appends the remaining processes in pid order. The result always
// satisfies IsSecretive (Lemma 4.1).
func Secretive(plan Plan) Schedule {
	t := NewTracker(plan)
	pids := plan.Pids()
	sigma := make(Schedule, 0, len(plan))
	remaining := make(map[int]bool, len(plan))
	byDst := make(map[int][]int)
	for _, pid := range pids {
		mv := plan[pid]
		if mv.Src == mv.Dst {
			// Self-moves first: they carry no value anywhere (see
			// Tracker.Apply), so their position is irrelevant to sources
			// and movers; front-loading keeps them out of Figure 1's
			// group bookkeeping.
			t.Apply(pid)
			sigma = append(sigma, pid)
			continue
		}
		remaining[pid] = true
		byDst[mv.Dst] = append(byDst[mv.Dst], pid) // ascending pid order
	}

	// Stage 1 (Figure 1): pick the smallest unscheduled process whose
	// source register is still fresh (empty movers) and schedule every
	// unscheduled process sharing its destination, the trigger last.
	// Freshness only ever decreases as moves are scheduled, so a single
	// ascending pass visits exactly the triggers the Figure 1 loop would
	// pick, in the same order, in near-linear time.
	for _, p := range pids {
		if !remaining[p] || len(t.Movers(plan[p].Src)) != 0 {
			continue
		}
		for _, q := range byDst[plan[p].Dst] {
			if q == p || !remaining[q] {
				continue
			}
			t.Apply(q)
			sigma = append(sigma, q)
			delete(remaining, q)
		}
		t.Apply(p) // the fresh-source trigger goes last in its group
		sigma = append(sigma, p)
		delete(remaining, p)
	}

	// Stage 2: remaining processes in pid order.
	for _, pid := range pids {
		if remaining[pid] {
			t.Apply(pid)
			sigma = append(sigma, pid)
		}
	}
	return sigma
}

// NaiveChain returns the plan's processes in increasing pid order. For the
// chain plan of Section 4's opening example — p_i performing
// move(R_i, R_{i+1}) — this schedule builds a movers chain of length n,
// revealing all n processes through one register. It is the baseline that
// motivates secretive schedules (experiment E9).
func NaiveChain(plan Plan) Schedule {
	return Schedule(plan.Pids())
}

// MaxMovers returns the length of the longest movers chain over the
// destination registers of the plan after executing σ.
func MaxMovers(plan Plan, sigma Schedule) int {
	t := Eval(plan, sigma)
	longest := 0
	for _, mv := range plan {
		if l := len(t.Movers(mv.Dst)); l > longest {
			longest = l
		}
	}
	return longest
}

// CheckLemma42 verifies Lemma 4.2 for one register: given a secretive
// complete schedule σ and any S' ⊆ S containing every process in
// movers(reg, σ), executing only σ|S' moves the same original value into
// reg, i.e. source(reg, σ|S') = source(reg, σ). It returns an error
// describing the violation, or nil.
func CheckLemma42(plan Plan, sigma Schedule, reg int, sub map[int]bool) error {
	t := Eval(plan, sigma)
	for _, pid := range t.Movers(reg) {
		if !sub[pid] {
			return fmt.Errorf("moveplan: subset does not contain mover %d of R%d", pid, reg)
		}
	}
	restricted := sigma.Restrict(sub)
	subPlan := make(Plan, len(sub))
	for pid := range sub {
		if mv, ok := plan[pid]; ok {
			subPlan[pid] = mv
		}
	}
	tSub := Eval(subPlan, restricted)
	if got, want := tSub.Source(reg), t.Source(reg); got != want {
		return fmt.Errorf("moveplan: source(R%d, σ|S') = R%d, want R%d", reg, got, want)
	}
	return nil
}
