package moveplan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// chainPlan is the opening example of Section 4: p_i performs
// move(R_i, R_{i+1}) for i = 0..n-1.
func chainPlan(n int) Plan {
	plan := make(Plan, n)
	for i := 0; i < n; i++ {
		plan[i] = Move{Src: i, Dst: i + 1}
	}
	return plan
}

func TestNaiveChainRevealsEverything(t *testing.T) {
	const n = 8
	plan := chainPlan(n)
	sigma := NaiveChain(plan)
	src, movers := SourceAndMovers(plan, sigma, n)
	if src != 0 {
		t.Fatalf("chain scheduled in order must carry R0 into R%d, got R%d", n, src)
	}
	if len(movers) != n {
		t.Fatalf("naive chain movers length = %d, want %d", len(movers), n)
	}
	if IsSecretive(plan, sigma) {
		t.Fatal("the naive chain schedule must not be secretive for n > 2")
	}
}

func TestEvenOddScheduleOfSection4(t *testing.T) {
	// The paper's alternative: even processes first, then odd. Every
	// register then has at most two movers.
	const n = 8
	plan := chainPlan(n)
	var sigma Schedule
	for i := 0; i < n; i += 2 {
		sigma = append(sigma, i)
	}
	for i := 1; i < n; i += 2 {
		sigma = append(sigma, i)
	}
	if !IsSecretive(plan, sigma) {
		t.Fatal("even-odd schedule of Section 4 must be secretive")
	}
	// R_i receives the original value of R_{i-1} (odd i) or R_{i-2} (even i).
	for i := 1; i <= n; i++ {
		src, _ := SourceAndMovers(plan, sigma, i)
		want := i - 1
		if i%2 == 0 {
			want = i - 2
		}
		if src != want {
			t.Errorf("source(R%d) = R%d, want R%d", i, src, want)
		}
	}
}

func TestSecretiveOnChain(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 64} {
		plan := chainPlan(n)
		sigma := Secretive(plan)
		if !IsSecretive(plan, sigma) {
			t.Fatalf("n=%d: Secretive produced a non-secretive schedule %v", n, sigma)
		}
	}
}

func TestSecretiveEmptyPlan(t *testing.T) {
	sigma := Secretive(Plan{})
	if len(sigma) != 0 {
		t.Fatalf("empty plan must yield empty schedule, got %v", sigma)
	}
	if !IsSecretive(Plan{}, sigma) {
		t.Fatal("empty schedule must be secretive for the empty plan")
	}
}

func TestSecretiveSelfMove(t *testing.T) {
	// move(R, R) is legal: the register is its own source.
	plan := Plan{3: {Src: 5, Dst: 5}}
	sigma := Secretive(plan)
	if !IsSecretive(plan, sigma) {
		t.Fatalf("self-move plan not handled: %v", sigma)
	}
	// A self-move carries no value: the register remains its own source and
	// the movers chain stays empty (see Tracker.Apply).
	src, movers := SourceAndMovers(plan, sigma, 5)
	if src != 5 || len(movers) != 0 {
		t.Fatalf("self-move: source=R%d movers=%v", src, movers)
	}
}

func TestSecretiveFanIn(t *testing.T) {
	// Many processes move different sources into the same destination.
	plan := Plan{}
	for i := 0; i < 10; i++ {
		plan[i] = Move{Src: 100 + i, Dst: 7}
	}
	sigma := Secretive(plan)
	if !IsSecretive(plan, sigma) {
		t.Fatalf("fan-in plan: schedule %v not secretive", sigma)
	}
	_, movers := SourceAndMovers(plan, sigma, 7)
	if len(movers) != 1 {
		t.Fatalf("fan-in destination must have exactly one mover, got %v", movers)
	}
}

func TestSecretiveFanOut(t *testing.T) {
	// One source register fans out to many destinations.
	plan := Plan{}
	for i := 0; i < 10; i++ {
		plan[i] = Move{Src: 3, Dst: 50 + i}
	}
	sigma := Secretive(plan)
	if !IsSecretive(plan, sigma) {
		t.Fatalf("fan-out plan: schedule %v not secretive", sigma)
	}
}

func TestSecretiveCycle(t *testing.T) {
	// A cycle of moves: R0→R1→R2→R0.
	plan := Plan{
		0: {Src: 0, Dst: 1},
		1: {Src: 1, Dst: 2},
		2: {Src: 2, Dst: 0},
	}
	sigma := Secretive(plan)
	if !IsSecretive(plan, sigma) {
		t.Fatalf("cycle plan: schedule %v not secretive", sigma)
	}
}

func TestIsCompleteRejectsDuplicatesAndStrangers(t *testing.T) {
	plan := chainPlan(3)
	if IsComplete(plan, Schedule{0, 1}) {
		t.Fatal("incomplete schedule accepted")
	}
	if IsComplete(plan, Schedule{0, 1, 1}) {
		t.Fatal("schedule with duplicate accepted")
	}
	if IsComplete(plan, Schedule{0, 1, 9}) {
		t.Fatal("schedule with foreign pid accepted")
	}
	if !IsComplete(plan, Schedule{2, 0, 1}) {
		t.Fatal("valid complete schedule rejected")
	}
}

func TestRestrict(t *testing.T) {
	s := Schedule{4, 1, 3, 2}
	got := s.Restrict(map[int]bool{2: true, 1: true})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Restrict = %v, want [1 2]", got)
	}
}

func TestTrackerApplyUnknownPidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply of unknown pid must panic")
		}
	}()
	NewTracker(Plan{}).Apply(0)
}

// randomPlan builds a random (S, f) over nregs registers with k movers.
func randomPlan(rng *rand.Rand, k, nregs int) Plan {
	plan := make(Plan, k)
	pids := rng.Perm(3 * k)[:k] // sparse, unordered pids
	for _, pid := range pids {
		plan[pid] = Move{Src: rng.Intn(nregs), Dst: rng.Intn(nregs)}
	}
	return plan
}

// TestPropertySecretiveAlwaysAtMostTwoMovers is Lemma 4.1 as a property:
// for random plans, the constructed schedule is complete and every register
// has at most two movers.
func TestPropertySecretiveAlwaysAtMostTwoMovers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		plan := randomPlan(rng, 2+rng.Intn(30), 1+rng.Intn(12))
		sigma := Secretive(plan)
		return IsSecretive(plan, sigma)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLemma42 verifies Lemma 4.2 on random plans: restricting a
// secretive schedule to any superset of a register's movers preserves that
// register's source.
func TestPropertyLemma42(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		plan := randomPlan(rng, 2+rng.Intn(25), 1+rng.Intn(10))
		sigma := Secretive(plan)
		tr := Eval(plan, sigma)
		for _, mv := range plan {
			reg := mv.Dst
			// S' = movers(reg) plus a random sprinkling of other processes.
			sub := make(map[int]bool)
			for _, pid := range tr.Movers(reg) {
				sub[pid] = true
			}
			for pid := range plan {
				if rng.Intn(2) == 0 {
					sub[pid] = true
				}
			}
			if err := CheckLemma42(plan, sigma, reg, sub); err != nil {
				t.Logf("seed %d: %v (schedule %v, plan %v)", seed, err, sigma, plan)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLemma42RejectsMissingMover(t *testing.T) {
	plan := chainPlan(4)
	sigma := Secretive(plan)
	tr := Eval(plan, sigma)
	var reg int
	for _, mv := range plan {
		if len(tr.Movers(mv.Dst)) > 0 {
			reg = mv.Dst
			break
		}
	}
	if err := CheckLemma42(plan, sigma, reg, map[int]bool{}); err == nil {
		t.Fatal("CheckLemma42 must reject a subset missing the movers")
	}
}

func TestMaxMovers(t *testing.T) {
	plan := chainPlan(6)
	if got := MaxMovers(plan, NaiveChain(plan)); got != 6 {
		t.Fatalf("naive chain MaxMovers = %d, want 6", got)
	}
	if got := MaxMovers(plan, Secretive(plan)); got > 2 {
		t.Fatalf("secretive MaxMovers = %d, want <= 2", got)
	}
}

func TestMoveString(t *testing.T) {
	if got := (Move{Src: 1, Dst: 2}).String(); got != "move(R1, R2)" {
		t.Fatalf("Move.String() = %q", got)
	}
}
