package main

import "testing"

func TestTypeForKnowsEveryType(t *testing.T) {
	for _, name := range []string{"fetch&increment", "queue", "stack"} {
		mk, op, err := typeFor(name)
		if err != nil {
			t.Errorf("typeFor(%q): %v", name, err)
			continue
		}
		typ := mk(4)
		if typ == nil {
			t.Errorf("typeFor(%q): nil type", name)
			continue
		}
		o := op(4, 1)
		// The generated op must be applicable to the type's initial state.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("typeFor(%q): op %v not applicable: %v", name, o, r)
				}
			}()
			typ.Apply(typ.Init(4), o)
		}()
	}
	if _, _, err := typeFor("bogus"); err == nil {
		t.Error("unknown type must error")
	}
}
