package main

import (
	"reflect"
	"testing"

	"jayanti98/internal/lowerbound"
	"jayanti98/internal/universal"
)

// TestSweepEveryConstructionParallelMatchesSerial runs the same small
// sweep main performs, over every registered construction, at parallelism
// 1 and 4, and requires identical results — the engine's determinism
// contract on this command's workload.
func TestSweepEveryConstructionParallelMatchesSerial(t *testing.T) {
	st, err := lowerbound.SweepTypeFor("fetch&increment")
	if err != nil {
		t.Fatal(err)
	}
	ns := []int{2, 4, 8, 16}
	for _, name := range universal.Names() {
		name := name
		mk := func(n int) universal.Construction {
			return universal.Must(universal.New(name, st.New(n), n, 0))
		}
		serial, sGrowth, err := lowerbound.SweepConstructionParallel(mk, st.Op, ns, 1)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		par, pGrowth, err := lowerbound.SweepConstructionParallel(mk, st.Op, ns, 4)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if !reflect.DeepEqual(serial, par) || sGrowth != pGrowth {
			t.Fatalf("%s: parallel sweep diverged:\nserial  %+v (%s)\nparallel %+v (%s)",
				name, serial, sGrowth, par, pGrowth)
		}
	}
}

func TestTypeForKnowsEveryType(t *testing.T) {
	for _, name := range []string{"fetch&increment", "queue", "stack"} {
		st, err := lowerbound.SweepTypeFor(name)
		if err != nil {
			t.Errorf("SweepTypeFor(%q): %v", name, err)
			continue
		}
		typ := st.New(4)
		if typ == nil {
			t.Errorf("SweepTypeFor(%q): nil type", name)
			continue
		}
		o := st.Op(4, 1)
		// The generated op must be applicable to the type's initial state.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("SweepTypeFor(%q): op %v not applicable: %v", name, o, r)
				}
			}()
			typ.Apply(typ.Init(4), o)
		}()
	}
	if _, err := lowerbound.SweepTypeFor("bogus"); err == nil {
		t.Error("unknown type must error")
	}
}
