// Command unisweep sweeps the universal constructions across process
// counts and prints the adversary-forced worst-case shared accesses per
// operation, together with a growth classification — the executable form
// of the paper's tightness discussion: the group-update construction stays
// logarithmic while the herlihy baseline grows linearly, and no oblivious
// construction may dip below ⌈log₄ n⌉.
//
// Usage:
//
//	unisweep [-max 256] [-type fetch&increment|queue|stack] [-parallel N]
//
// -parallel fans each construction's n-grid out over N worker goroutines
// through the sweep engine (default: one per CPU; 1 reproduces the serial
// sweep). Output is identical at every parallelism level.
package main

import (
	"flag"
	"fmt"
	"log"

	"jayanti98/internal/lowerbound"
	"jayanti98/internal/report"
	"jayanti98/internal/sweep"
	"jayanti98/internal/universal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("unisweep: ")
	maxN := flag.Int("max", 256, "largest process count (sweep doubles from 2)")
	typeName := flag.String("type", "fetch&increment", "object type to instantiate")
	parallel := flag.Int("parallel", 0, "sweep worker goroutines (default one per CPU; 1 = serial)")
	flag.Parse()

	var ns []int
	for n := 2; n <= *maxN; n *= 2 {
		ns = append(ns, n)
	}
	st, err := lowerbound.SweepTypeFor(*typeName)
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range universal.Names() {
		name := name
		mk := func(n int) universal.Construction {
			return universal.Must(universal.New(name, st.New(n), n, 0))
		}
		results, growth, err := lowerbound.SweepConstructionParallel(mk, st.Op, ns, sweep.Workers(*parallel))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s on %s — measured growth: %s\n\n", name, st.New(2).Name(), growth)
		tbl := report.NewTable("n", "forced steps/op", "documented bound", "Ω ⌈log₄ n⌉")
		for _, r := range results {
			bound := "not wait-free"
			if r.StepBound > 0 {
				bound = fmt.Sprintf("%d", r.StepBound)
			}
			tbl.AddRow(r.N, r.MaxSteps, bound, r.LowerBound)
		}
		fmt.Print(tbl)
	}
}
