// Command unisweep sweeps the universal constructions across process
// counts and prints the adversary-forced worst-case shared accesses per
// operation, together with a growth classification — the executable form
// of the paper's tightness discussion: the group-update construction stays
// logarithmic while the herlihy baseline grows linearly, and no oblivious
// construction may dip below ⌈log₄ n⌉.
//
// Usage:
//
//	unisweep [-max 256] [-type fetch&increment|queue|stack]
package main

import (
	"flag"
	"fmt"
	"log"

	"jayanti98/internal/lowerbound"
	"jayanti98/internal/objtype"
	"jayanti98/internal/report"
	"jayanti98/internal/universal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("unisweep: ")
	maxN := flag.Int("max", 256, "largest process count (sweep doubles from 2)")
	typeName := flag.String("type", "fetch&increment", "object type to instantiate")
	flag.Parse()

	var ns []int
	for n := 2; n <= *maxN; n *= 2 {
		ns = append(ns, n)
	}
	mkType, op, err := typeFor(*typeName)
	if err != nil {
		log.Fatal(err)
	}

	sweeps := []struct {
		name string
		mk   func(n int) universal.Construction
	}{
		{"group-update", func(n int) universal.Construction { return universal.NewGroupUpdate(mkType(n), n, 0) }},
		{"herlihy", func(n int) universal.Construction { return universal.NewHerlihy(mkType(n), n, 0) }},
		{"central", func(n int) universal.Construction { return universal.NewCentral(mkType(n), n, 0) }},
	}
	for _, s := range sweeps {
		results, growth, err := lowerbound.SweepConstruction(s.mk, op, ns)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s on %s — measured growth: %s\n\n", s.name, mkType(2).Name(), growth)
		tbl := report.NewTable("n", "forced steps/op", "documented bound", "Ω ⌈log₄ n⌉")
		for _, r := range results {
			bound := "not wait-free"
			if r.StepBound > 0 {
				bound = fmt.Sprintf("%d", r.StepBound)
			}
			tbl.AddRow(r.N, r.MaxSteps, bound, r.LowerBound)
		}
		fmt.Print(tbl)
	}
}

func typeFor(name string) (func(n int) objtype.Type, func(n, pid int) objtype.Op, error) {
	switch name {
	case "fetch&increment":
		return func(n int) objtype.Type { return objtype.NewFetchIncrement(64) },
			lowerbound.FetchIncOp, nil
	case "queue":
		return func(n int) objtype.Type { return objtype.NewWakeupQueue() },
			func(n, pid int) objtype.Op { return objtype.Op{Name: objtype.OpDequeue} }, nil
	case "stack":
		return func(n int) objtype.Type { return objtype.NewWakeupStack() },
			func(n, pid int) objtype.Op { return objtype.Op{Name: objtype.OpPop} }, nil
	default:
		return nil, nil, fmt.Errorf("unknown type %q (want fetch&increment, queue, or stack)", name)
	}
}
