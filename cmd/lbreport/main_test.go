package main

import (
	"strings"
	"testing"
)

// TestQuickReportRuns executes the full report pipeline at quick sizes and
// sanity-checks that every experiment section renders with passing checks.
func TestQuickReportRuns(t *testing.T) {
	var b strings.Builder
	if err := run(&b, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, section := range []string{
		"E1 —", "E2 —", "E3 —", "E4/E5 —", "E6 —", "E7/E8 —", "E9 —", "E10 —", "E11 —", "E12 —",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("report missing section %q", section)
		}
	}
	if strings.Contains(out, "FAIL") {
		i := strings.Index(out, "FAIL")
		t.Fatalf("report contains a failing check near: %q", out[max(0, i-120):i+60])
	}
	if !strings.Contains(out, "measured growth: logarithmic") {
		t.Error("group-update growth classification missing")
	}
	if !strings.Contains(out, "measured growth: linear") {
		t.Error("herlihy growth classification missing")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
