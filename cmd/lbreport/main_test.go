package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jayanti98/internal/report"
)

// TestQuickReportRuns executes the full report pipeline at quick sizes and
// sanity-checks that every experiment section renders with passing checks.
func TestQuickReportRuns(t *testing.T) {
	var b strings.Builder
	if err := run(&b, options{Quick: true, Parallel: 4, Timing: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, section := range []string{
		"E1 —", "E2 —", "E3 —", "E4/E5 —", "E6 —", "E7/E8 —", "E9 —", "E10 —", "E11 —", "E12 —",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("report missing section %q", section)
		}
	}
	if strings.Contains(out, "FAIL") {
		i := strings.Index(out, "FAIL")
		t.Fatalf("report contains a failing check near: %q", out[max(0, i-120):i+60])
	}
	if !strings.Contains(out, "measured growth: logarithmic") {
		t.Error("group-update growth classification missing")
	}
	if !strings.Contains(out, "measured growth: linear") {
		t.Error("herlihy growth classification missing")
	}
	for _, label := range []string{"_E1 wall-clock: ", "_E4/E5 wall-clock: ", "_E12 wall-clock: "} {
		if !strings.Contains(out, label) {
			t.Errorf("report missing timing line %q", label)
		}
	}
}

// TestParallelReportByteIdentical is the determinism contract of the sweep
// engine end to end: the -parallel 8 report must be byte-identical to the
// -parallel 1 (serial) report once the wall-clock lines are out of the
// comparison.
func TestParallelReportByteIdentical(t *testing.T) {
	var serial, parallel strings.Builder
	if err := run(&serial, options{Quick: true, Parallel: 1, Timing: false}); err != nil {
		t.Fatal(err)
	}
	if err := run(&parallel, options{Quick: true, Parallel: 8, Timing: true}); err != nil {
		t.Fatal(err)
	}
	got := report.StripTimings(parallel.String())
	if got != serial.String() {
		line := firstDiffLine(serial.String(), got)
		t.Fatalf("parallel report diverges from serial report at: %q", line)
	}
}

func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return al[i] + " <> " + bl[i]
		}
	}
	return "length mismatch"
}

// TestFailedRunLeavesNoFile pins the atomic-output contract: a run that
// errors mid-report must leave neither the target file nor any temp file
// behind, and must not clobber a pre-existing report.
func TestFailedRunLeavesNoFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.md")
	boom := errors.New("experiment exploded")
	err := writeFileAtomic(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "# partial report\n"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the generator error", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed run left %s behind", path)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("failed run left stray files: %v", left)
	}

	// A failing regeneration must not touch an existing report either.
	if err := os.WriteFile(path, []byte("previous good report"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "previous good report" {
		t.Fatalf("failed run clobbered the existing report: %q", got)
	}
}

// TestWriteFileAtomicSuccess checks the success path renames the full
// content into place and leaves no temp file behind.
func TestWriteFileAtomicSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.md")
	if err := writeFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "# full report\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "# full report\n" {
		t.Fatalf("content = %q", got)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Fatalf("temp files left behind: %v", left)
	}
}

// TestEmitBadDirectoryErrors: -o into a nonexistent directory must fail
// up front rather than Fatal from a defer.
func TestEmitBadDirectoryErrors(t *testing.T) {
	err := emit(filepath.Join(t.TempDir(), "no", "such", "dir", "report.md"),
		options{Quick: true, Parallel: 1})
	if err == nil {
		t.Fatal("expected an error for an unwritable path")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
