// Command lbreport regenerates every experiment of the reproduction
// (E1–E12, see DESIGN.md §3) and writes a markdown report. EXPERIMENTS.md
// records a captured run of this command. The experiments themselves live
// in internal/experiments, shared with the job service (cmd/lbserver).
//
// Usage:
//
//	lbreport [-o report.md] [-quick] [-parallel N] [-timing=false]
//	         [-experiments E1,E2,...] [-cpuprofile cpu.pprof]
//
// -quick shrinks the sweeps for a fast smoke run. -parallel fans each
// experiment's (algorithm, n, sample) grid out over N worker goroutines
// (default: one per CPU; 1 reproduces the serial run). -experiments
// selects a comma-separated subset (default: all, in report order). Apart
// from the wall-clock lines (suppressible with -timing=false), the report
// is byte-identical at every parallelism level: every grid point derives
// its randomness from its own coordinates and tables are rendered only
// after each sweep's barrier. With -o the report is written to a temp file
// in the target directory and atomically renamed into place on success, so
// a failed run never leaves a partial or truncated report behind.
// -cpuprofile captures a CPU profile of the whole run for `go tool pprof`
// (`make profile` wraps this in a quick hotspot report).
package main

import (
	"context"
	"flag"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"jayanti98/internal/experiments"
	"jayanti98/internal/machine"
	"jayanti98/internal/sweep"
)

// options carries the report knobs through run and the experiment funcs.
type options struct {
	// Quick shrinks the sweeps for a fast smoke run.
	Quick bool
	// Parallel is the sweep worker count (≤ 0: one per CPU, 1: serial).
	Parallel int
	// Timing appends a wall-clock line after each experiment.
	Timing bool
	// Experiments selects a subset by name (nil: all).
	Experiments []string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbreport: ")
	out := flag.String("o", "", "write the report to this file (default stdout)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast run")
	parallel := flag.Int("parallel", 0, "sweep worker goroutines (default one per CPU; 1 = serial)")
	timing := flag.Bool("timing", true, "append a wall-clock line after each experiment")
	names := flag.String("experiments", "", "comma-separated experiment subset: "+strings.Join(experiments.Names(), ","))
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	engine := flag.String("engine", "", "execution engine: auto, goroutine, or vm (default $LB_ENGINE, else auto)")
	flag.Parse()
	if *engine != "" {
		eng, err := machine.ParseEngine(*engine)
		if err != nil {
			log.Fatal(err)
		}
		machine.SetDefaultEngine(eng)
	}
	opts := options{Quick: *quick, Parallel: sweep.Workers(*parallel), Timing: *timing}
	if *names != "" {
		opts.Experiments = strings.Split(*names, ",")
	}
	if err := profiled(*cpuprofile, *out, opts); err != nil {
		log.Fatal(err)
	}
}

// profiled runs emit, optionally under CPU profiling. It exists as a
// function (rather than inline in main) so StopCPUProfile runs via defer
// before the exit path — log.Fatal in main would skip it and truncate
// the profile.
func profiled(cpuprofile, out string, opts options) error {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	return emit(out, opts)
}

// emit writes the report to path, or to stdout when path is empty.
func emit(path string, opts options) error {
	if path == "" {
		return run(os.Stdout, opts)
	}
	return writeFileAtomic(path, func(w io.Writer) error { return run(w, opts) })
}

// writeFileAtomic streams gen into a temp file next to path and renames it
// into place only after gen and Close both succeed. On any failure the
// temp file is removed and path is left untouched — a failed run can
// neither truncate nor partially overwrite an existing report.
func writeFileAtomic(path string, gen func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = gen(tmp); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func run(w io.Writer, opts options) error {
	return experiments.WriteReport(context.Background(), w, opts.Experiments,
		experiments.Options{Quick: opts.Quick, Parallel: opts.Parallel}, opts.Timing)
}
