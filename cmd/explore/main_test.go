package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExhaustiveClean(t *testing.T) {
	var b strings.Builder
	found, err := run(context.Background(), &b, options{Alg: "central", Object: "fetch-increment", N: 2, K: 1, Mode: "exhaustive"})
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatalf("unexpected failure:\n%s", b.String())
	}
	out := b.String()
	for _, want := range []string{"exhaustive central/fetch-increment n=2 k=1", "states", "no failures"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFuzzWritesReplayAndReplays(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	// A tiny budget manufactures a real failure on a correct construction.
	found, err := run(context.Background(), &b, options{Alg: "central", Object: "fetch-increment", N: 2, K: 1,
		Mode: "fuzz", Samples: 1, Seed: 5, Budget: 2, Out: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("budget 2 must fail:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "replay written to") {
		t.Fatalf("no replay file reported:\n%s", b.String())
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want 1 replay file, got %v (%v)", files, err)
	}

	var rb strings.Builder
	found, err = run(context.Background(), &rb, options{Replay: files[0]})
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("replay mode must exit clean when the failure reproduces")
	}
	if !strings.Contains(rb.String(), "reproduced bit-for-bit") {
		t.Fatalf("replay output:\n%s", rb.String())
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	var b strings.Builder
	if _, err := run(context.Background(), &b, options{Alg: "central", Object: "fetch-increment", N: 2, K: 1, Mode: "bogus"}); err == nil {
		t.Fatal("unknown mode must error")
	}
}
