// Command explore searches the schedule space of a universal construction
// or of a zoo algorithm (internal/algos) for linearizability violations,
// crashes, and budget (liveness) bugs.
//
// Usage:
//
//	explore [-alg name] [-object workload] [-n N] [-k ops] [-mode exhaustive|fuzz]
//	        [-samples S] [-seed V] [-budget B] [-parallel P] [-out dir] [-engine E]
//	        [-llsc native|bw]
//	explore -replay file.json
//
// Exhaustive mode enumerates every interleaving (with memoized-state
// pruning) and is meant for small n; fuzz mode samples random schedules
// with per-sample derived seeds and persists every failure — shrunk to a
// minimal schedule — as a JSON replay file under -out. A replay file is
// re-executed bit-for-bit with -replay.
//
// The command exits 0 when no failure is found, 1 on a detected failure,
// and 2 on usage or execution errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"jayanti98/internal/algos"
	"jayanti98/internal/explore"
	"jayanti98/internal/llsc"
	"jayanti98/internal/machine"
	"jayanti98/internal/universal"
)

type options struct {
	Alg      string
	Object   string
	N        int
	K        int
	Mode     string
	Samples  int
	Seed     int64
	Budget   int
	Parallel int
	Out      string
	Replay   string
	LLSC     string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("explore: ")
	var opts options
	flag.StringVar(&opts.Alg, "alg", "group-update", "system under test: a construction ("+
		strings.Join(universal.Names(), ", ")+") or a zoo algorithm ("+strings.Join(algos.Names(), ", ")+")")
	flag.StringVar(&opts.Object, "object", "fetch-increment", "workload: "+strings.Join(explore.Workloads(), ", "))
	flag.IntVar(&opts.N, "n", 2, "number of processes")
	flag.IntVar(&opts.K, "k", 1, "operations per process")
	flag.StringVar(&opts.Mode, "mode", "exhaustive", "search mode: exhaustive or fuzz")
	flag.IntVar(&opts.Samples, "samples", 200, "fuzz: number of random schedules")
	flag.Int64Var(&opts.Seed, "seed", 1, "fuzz: campaign base seed")
	flag.IntVar(&opts.Budget, "budget", 0, "step budget (0: automatic from the construction's step bound)")
	flag.IntVar(&opts.Parallel, "parallel", 0, "worker goroutines (default one per CPU; 1 = serial)")
	flag.StringVar(&opts.Out, "out", "", "fuzz: directory for JSON replay files of failures")
	flag.StringVar(&opts.Replay, "replay", "", "re-execute a replay file bit-for-bit and exit")
	flag.StringVar(&opts.LLSC, "llsc", "", "shared-memory backend: native or bw (default $LB_LLSC, else native)")
	engine := flag.String("engine", "", "execution engine: auto, goroutine, or vm (default $LB_ENGINE, else auto)")
	flag.Parse()
	if *engine != "" {
		eng, err := machine.ParseEngine(*engine)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		machine.SetDefaultEngine(eng)
	}
	if _, err := llsc.ParseBackend(opts.LLSC); err != nil {
		log.Print(err)
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the search context: in-flight samples stop
	// dispatching and any running shrink (explore.ShrinkCtx) returns its
	// best schedule so far instead of minimizing to a fixpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	foundFailure, err := run(ctx, os.Stdout, opts)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	if foundFailure {
		os.Exit(1)
	}
}

// run executes one invocation, reporting whether a failure was found.
func run(ctx context.Context, w io.Writer, opts options) (bool, error) {
	if opts.Replay != "" {
		return runReplay(w, opts.Replay)
	}
	cfg := explore.Config{
		Alg:        opts.Alg,
		Object:     opts.Object,
		N:          opts.N,
		OpsPerProc: opts.K,
		Budget:     opts.Budget,
		LLSC:       opts.LLSC,
	}
	switch opts.Mode {
	case "exhaustive":
		rep, err := explore.ExhaustiveCtx(ctx, cfg, opts.Parallel)
		if err != nil {
			return false, err
		}
		fmt.Fprintf(w, "exhaustive %s/%s n=%d k=%d budget=%d: %d states, %d runs, %d complete, %d truncated\n",
			cfg.Alg, cfg.Object, cfg.N, cfg.OpsPerProc, rep.Cfg.Budget, rep.States, rep.Runs, rep.Complete, rep.Truncated)
		if rep.Failure == nil {
			fmt.Fprintf(w, "no failures: every interleaving linearizes\n")
			return false, nil
		}
		fmt.Fprintf(w, "FAILURE %v\nschedule: %v\n", rep.Failure, rep.Record.Schedule)
		for _, ev := range rep.Record.Events {
			fmt.Fprintf(w, "  %s\n", ev)
		}
		return true, nil
	case "fuzz":
		rep, err := explore.FuzzCtx(ctx, cfg, explore.FuzzOptions{
			Samples: opts.Samples,
			Seed:    opts.Seed,
			Workers: opts.Parallel,
			OutDir:  opts.Out,
		})
		if err != nil {
			return false, err
		}
		fmt.Fprintf(w, "fuzz %s/%s n=%d k=%d: %d samples, %d total steps, %d failures\n",
			cfg.Alg, cfg.Object, cfg.N, cfg.OpsPerProc, rep.Samples, rep.TotalSteps, len(rep.Failures))
		for i, f := range rep.Failures {
			fmt.Fprintf(w, "FAILURE sample seed %d: %s: %s\n  schedule (%d steps, shrunk from %d): %v\n",
				f.Seed, f.Kind, f.Detail, len(f.Schedule), f.OriginalLen, f.Schedule)
			if rep.Paths[i] != "" {
				fmt.Fprintf(w, "  replay written to %s\n", rep.Paths[i])
			}
		}
		return len(rep.Failures) > 0, nil
	default:
		return false, fmt.Errorf("unknown mode %q (want exhaustive or fuzz)", opts.Mode)
	}
}

// runReplay re-executes a persisted failure and verifies it reproduces
// bit-for-bit. Reproducing the recorded failure counts as success (exit 0):
// the point of a replay is that the failure is still there.
func runReplay(w io.Writer, path string) (bool, error) {
	rp, err := explore.ReadReplay(path)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(w, "replaying %s: %s/%s n=%d k=%d, %d-step schedule, recorded %s\n",
		path, rp.Alg, rp.Object, rp.N, rp.OpsPerProc, len(rp.Schedule), rp.Kind)
	rec, diff, err := explore.Verify(rp)
	if err != nil {
		return false, err
	}
	if diff != "" {
		return false, fmt.Errorf("replay diverged: %s", diff)
	}
	fmt.Fprintf(w, "reproduced bit-for-bit: %v\n", rec.Failure)
	for _, ev := range rec.Events {
		fmt.Fprintf(w, "  %s\n", ev)
	}
	return false, nil
}
