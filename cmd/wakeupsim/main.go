// Command wakeupsim runs one wakeup algorithm against the adversary
// scheduler of Figure 2 and prints the run's anatomy: per-round groups and
// steps, who returned what, the forced step counts against the ⌈log₄ n⌉
// bound, and the outcome of every checkable lemma. With -catch it also
// attempts the Theorem 6.1 catch (build S = UP(winner, steps) and exhibit
// the violating (S,A)-run) — try it on -alg cheater.
//
// Usage:
//
//	wakeupsim [-alg set-register|double-register|move-courier|cheater|
//	           counting-network|fetch&increment|fetch&and|fetch&or|
//	           fetch&complement|fetch&multiply|queue|stack|read-increment]
//	          [-n 16] [-seed 1] [-rounds] [-catch]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"jayanti98/internal/core"
	"jayanti98/internal/lowerbound"
	"jayanti98/internal/machine"
	"jayanti98/internal/report"
	"jayanti98/internal/wakeup"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wakeupsim: ")
	algName := flag.String("alg", "set-register", "wakeup algorithm or Theorem 6.2 reduction name")
	n := flag.Int("n", 16, "number of processes")
	seed := flag.Int64("seed", 1, "toss-assignment seed (randomized algorithms)")
	showRounds := flag.Bool("rounds", false, "print the per-round schedule")
	tryCatch := flag.Bool("catch", false, "attempt the Theorem 6.1 catch via the (S,A)-run")
	flag.Parse()

	alg, err := buildAlgorithm(*algName, *n)
	if err != nil {
		log.Fatal(err)
	}
	run, err := core.RunAll(alg, *n, lowerbound.HashTosses(*seed), core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm  %s\n", alg.Name())
	fmt.Printf("processes  %d\n", *n)
	fmt.Printf("rounds     %d\n", len(run.Rounds))
	maxSteps, maxPid := run.MaxSteps()
	fmt.Printf("t(R)       %d shared accesses (p%d)\n", maxSteps, maxPid)
	winners := core.WakeupWinners(run.Returns)
	fmt.Printf("winners    %v\n", winners)
	for _, wnr := range winners {
		fmt.Printf("           p%d spent %d steps (bound ⌈log₄ %d⌉ = %d)\n",
			wnr, run.Steps[wnr], *n, core.Log4Ceil(*n))
	}
	fmt.Printf("spec       %s\n", report.Check(core.CheckWakeupRun(run)))
	fmt.Printf("lemma 5.1  %s\n", report.Check(core.CheckLemma51(run)))
	fmt.Printf("thm 6.1    %s\n", report.Check(core.VerifyTheorem61(run)))

	if *showRounds {
		printRounds(run)
	}
	if *tryCatch {
		catch, err := core.CatchFastWakeup(run)
		if err != nil {
			log.Fatal(err)
		}
		if catch == nil {
			fmt.Println("catch      no winner was fast enough to catch — the bound held")
			return
		}
		fmt.Printf("catch      %s\n", catch)
		fmt.Printf("           the (S,A)-run violates the wakeup specification: processes %v never step\n",
			catch.NeverStepped)
		os.Exit(2)
	}
}

func buildAlgorithm(name string, n int) (machine.Algorithm, error) {
	switch name {
	case "set-register":
		return wakeup.SetRegister(), nil
	case "double-register":
		return wakeup.DoubleRegister(), nil
	case "move-courier":
		return wakeup.MoveCourier(), nil
	case "cheater":
		return wakeup.Cheater(), nil
	case "counting-network":
		return wakeup.CountingNetwork(n), nil
	}
	for _, spec := range wakeup.Reductions() {
		if spec.Name == name {
			alg, _, err := lowerbound.BuildReduction(spec, "group-update", n)
			return alg, err
		}
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

func printRounds(run *core.AllRun) {
	fmt.Println("\nper-round schedule:")
	for _, round := range run.Rounds {
		fmt.Printf("round %d:", round.R)
		if len(round.Returned) > 0 {
			pids := make([]int, 0, len(round.Returned))
			for pid := range round.Returned {
				pids = append(pids, pid)
			}
			sort.Ints(pids)
			fmt.Printf(" returned=%v", pids)
		}
		labels := [4]string{"LL/val", "move", "swap", "SC"}
		for i, g := range round.Groups {
			if len(g) > 0 {
				fmt.Printf(" %s=%v", labels[i], g)
			}
		}
		fmt.Println()
	}
}
