// Command wakeupsim runs one wakeup algorithm against the adversary
// scheduler of Figure 2 and prints the run's anatomy: per-round groups and
// steps, who returned what, the forced step counts against the ⌈log₄ n⌉
// bound, and the outcome of every checkable lemma. With -catch it also
// attempts the Theorem 6.1 catch (build S = UP(winner, steps) and exhibit
// the violating (S,A)-run) — try it on -alg cheater. With -json the same
// anatomy is emitted as one JSON object on stdout for scripted consumers.
//
// Usage:
//
//	wakeupsim [-alg set-register|double-register|move-courier|cheater|
//	           counting-network|fetch&increment|fetch&and|fetch&or|
//	           fetch&complement|fetch&multiply|queue|stack|read-increment|
//	           test&set]
//	          [-n 16] [-seed 1] [-rounds] [-catch] [-json]
//
// The test&set reduction (the algorithm zoo's, wakeup.TASReduction) is
// accepted only at n ≤ 2: test&set is not perturbable, and a loser among
// three or more processes cannot conclude that everyone has stepped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"jayanti98/internal/core"
	"jayanti98/internal/lowerbound"
	"jayanti98/internal/machine"
	"jayanti98/internal/report"
	"jayanti98/internal/wakeup"
)

type options struct {
	alg        string
	n          int
	seed       int64
	showRounds bool
	tryCatch   bool
	jsonOut    bool
}

// checkResult is one lemma check in wire form.
type checkResult struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

func toCheck(err error) checkResult {
	if err != nil {
		return checkResult{Detail: err.Error()}
	}
	return checkResult{OK: true}
}

// winnerResult is one winner's step count against the bound.
type winnerResult struct {
	Pid   int `json:"pid"`
	Steps int `json:"steps"`
}

// catchResult is the Theorem 6.1 catch in wire form.
type catchResult struct {
	Winner       int    `json:"winner"`
	WinnerSteps  int    `json:"winnerSteps"`
	UpSet        []int  `json:"upSet"`
	NeverStepped []int  `json:"neverStepped"`
	Summary      string `json:"summary"`
}

// runResult mirrors the text report as a single JSON object.
type runResult struct {
	Algorithm   string         `json:"algorithm"`
	N           int            `json:"n"`
	Seed        int64          `json:"seed"`
	Rounds      int            `json:"rounds"`
	MaxSteps    int            `json:"maxSteps"`
	MaxStepsPid int            `json:"maxStepsPid"`
	Bound       int            `json:"bound"`
	Winners     []winnerResult `json:"winners"`
	Checks      struct {
		Spec      checkResult `json:"spec"`
		Lemma51   checkResult `json:"lemma51"`
		Theorem61 checkResult `json:"theorem61"`
	} `json:"checks"`
	// Catch is present only when -catch found a violating (S,A)-run.
	Catch *catchResult `json:"catch,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("wakeupsim: ")
	opts := options{}
	flag.StringVar(&opts.alg, "alg", "set-register", "wakeup algorithm or Theorem 6.2 reduction name")
	flag.IntVar(&opts.n, "n", 16, "number of processes")
	flag.Int64Var(&opts.seed, "seed", 1, "toss-assignment seed (randomized algorithms)")
	flag.BoolVar(&opts.showRounds, "rounds", false, "print the per-round schedule (text mode only)")
	flag.BoolVar(&opts.tryCatch, "catch", false, "attempt the Theorem 6.1 catch via the (S,A)-run")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit one JSON object on stdout instead of text")
	engine := flag.String("engine", "", "execution engine: auto, goroutine, or vm (default $LB_ENGINE, else auto)")
	flag.Parse()
	if *engine != "" {
		eng, err := machine.ParseEngine(*engine)
		if err != nil {
			log.Fatal(err)
		}
		machine.SetDefaultEngine(eng)
	}

	caught, err := run(os.Stdout, opts)
	if err != nil {
		log.Fatal(err)
	}
	if caught {
		os.Exit(2)
	}
}

// run executes one simulation and renders it to w. The returned bool
// reports whether -catch exhibited a specification violation (exit 2).
func run(w io.Writer, opts options) (bool, error) {
	alg, err := buildAlgorithm(opts.alg, opts.n)
	if err != nil {
		return false, err
	}
	allRun, err := core.RunAll(alg, opts.n, lowerbound.HashTosses(opts.seed), core.Config{})
	if err != nil {
		return false, err
	}

	res := runResult{
		Algorithm: alg.Name(),
		N:         opts.n,
		Seed:      opts.seed,
		Rounds:    len(allRun.Rounds),
		Bound:     core.Log4Ceil(opts.n),
		Winners:   []winnerResult{},
	}
	res.MaxSteps, res.MaxStepsPid = allRun.MaxSteps()
	for _, wnr := range core.WakeupWinners(allRun.Returns) {
		res.Winners = append(res.Winners, winnerResult{Pid: wnr, Steps: allRun.Steps[wnr]})
	}
	res.Checks.Spec = toCheck(core.CheckWakeupRun(allRun))
	res.Checks.Lemma51 = toCheck(core.CheckLemma51(allRun))
	res.Checks.Theorem61 = toCheck(core.VerifyTheorem61(allRun))

	var catch *core.Catch
	if opts.tryCatch {
		if catch, err = core.CatchFastWakeup(allRun); err != nil {
			return false, err
		}
		if catch != nil {
			res.Catch = &catchResult{
				Winner:       catch.Winner,
				WinnerSteps:  catch.WinnerSteps,
				UpSet:        catch.S.Sorted(),
				NeverStepped: catch.NeverStepped,
				Summary:      catch.String(),
			}
		}
	}

	if opts.jsonOut {
		enc := json.NewEncoder(w)
		if err := enc.Encode(res); err != nil {
			return false, err
		}
		return res.Catch != nil, nil
	}

	fmt.Fprintf(w, "algorithm  %s\n", res.Algorithm)
	fmt.Fprintf(w, "processes  %d\n", res.N)
	fmt.Fprintf(w, "rounds     %d\n", res.Rounds)
	fmt.Fprintf(w, "t(R)       %d shared accesses (p%d)\n", res.MaxSteps, res.MaxStepsPid)
	winners := make([]int, len(res.Winners))
	for i, wnr := range res.Winners {
		winners[i] = wnr.Pid
	}
	fmt.Fprintf(w, "winners    %v\n", winners)
	for _, wnr := range res.Winners {
		fmt.Fprintf(w, "           p%d spent %d steps (bound ⌈log₄ %d⌉ = %d)\n",
			wnr.Pid, wnr.Steps, res.N, res.Bound)
	}
	fmt.Fprintf(w, "spec       %s\n", report.Check(core.CheckWakeupRun(allRun)))
	fmt.Fprintf(w, "lemma 5.1  %s\n", report.Check(core.CheckLemma51(allRun)))
	fmt.Fprintf(w, "thm 6.1    %s\n", report.Check(core.VerifyTheorem61(allRun)))

	if opts.showRounds {
		printRounds(w, allRun)
	}
	if opts.tryCatch {
		if catch == nil {
			fmt.Fprintln(w, "catch      no winner was fast enough to catch — the bound held")
			return false, nil
		}
		fmt.Fprintf(w, "catch      %s\n", catch)
		fmt.Fprintf(w, "           the (S,A)-run violates the wakeup specification: processes %v never step\n",
			catch.NeverStepped)
		return true, nil
	}
	return false, nil
}

func buildAlgorithm(name string, n int) (machine.Algorithm, error) {
	switch name {
	case "set-register":
		return wakeup.SetRegister(), nil
	case "double-register":
		return wakeup.DoubleRegister(), nil
	case "move-courier":
		return wakeup.MoveCourier(), nil
	case "cheater":
		return wakeup.Cheater(), nil
	case "counting-network":
		return wakeup.CountingNetwork(n), nil
	}
	for _, spec := range wakeup.Reductions() {
		if spec.Name == name {
			alg, _, err := lowerbound.BuildReduction(spec, "group-update", n)
			return alg, err
		}
	}
	if tas := wakeup.TASReduction(); name == tas.Name {
		if n > 2 {
			return nil, fmt.Errorf("the test&set reduction is sound only at n <= 2 (test&set is not perturbable), got n = %d", n)
		}
		alg, _, err := lowerbound.BuildReduction(tas, "group-update", n)
		return alg, err
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

func printRounds(w io.Writer, run *core.AllRun) {
	fmt.Fprintln(w, "\nper-round schedule:")
	for _, round := range run.Rounds {
		fmt.Fprintf(w, "round %d:", round.R)
		if len(round.Returned) > 0 {
			pids := make([]int, 0, len(round.Returned))
			for pid := range round.Returned {
				pids = append(pids, pid)
			}
			sort.Ints(pids)
			fmt.Fprintf(w, " returned=%v", pids)
		}
		labels := [4]string{"LL/val", "move", "swap", "SC"}
		for i, g := range round.Groups {
			if len(g) > 0 {
				fmt.Fprintf(w, " %s=%v", labels[i], g)
			}
		}
		fmt.Fprintln(w)
	}
}
