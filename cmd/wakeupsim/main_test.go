package main

import "testing"

func TestBuildAlgorithmKnowsEveryName(t *testing.T) {
	names := []string{
		"set-register", "double-register", "move-courier", "cheater",
		"counting-network", "fetch&increment", "fetch&and", "fetch&or",
		"fetch&complement", "fetch&multiply", "queue", "stack", "read-increment",
	}
	for _, name := range names {
		alg, err := buildAlgorithm(name, 8)
		if err != nil {
			t.Errorf("buildAlgorithm(%q): %v", name, err)
			continue
		}
		if alg == nil || alg.Name() == "" {
			t.Errorf("buildAlgorithm(%q) returned a nameless algorithm", name)
		}
	}
	if _, err := buildAlgorithm("no-such-algorithm", 8); err == nil {
		t.Error("unknown algorithm must error")
	}
}
