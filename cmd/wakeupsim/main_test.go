package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBuildAlgorithmKnowsEveryName(t *testing.T) {
	names := []string{
		"set-register", "double-register", "move-courier", "cheater",
		"counting-network", "fetch&increment", "fetch&and", "fetch&or",
		"fetch&complement", "fetch&multiply", "queue", "stack", "read-increment",
	}
	for _, name := range names {
		alg, err := buildAlgorithm(name, 8)
		if err != nil {
			t.Errorf("buildAlgorithm(%q): %v", name, err)
			continue
		}
		if alg == nil || alg.Name() == "" {
			t.Errorf("buildAlgorithm(%q) returned a nameless algorithm", name)
		}
	}
	if _, err := buildAlgorithm("no-such-algorithm", 8); err == nil {
		t.Error("unknown algorithm must error")
	}
}

func TestRunTextMode(t *testing.T) {
	var buf bytes.Buffer
	caught, err := run(&buf, options{alg: "set-register", n: 16, seed: 1, showRounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if caught {
		t.Fatal("set-register should not be caught")
	}
	out := buf.String()
	for _, want := range []string{"algorithm  wakeup/set-register", "processes  16", "spec       ok", "per-round schedule:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunJSONMode(t *testing.T) {
	var buf bytes.Buffer
	caught, err := run(&buf, options{alg: "set-register", n: 16, seed: 1, jsonOut: true})
	if err != nil {
		t.Fatal(err)
	}
	if caught {
		t.Fatal("set-register should not be caught")
	}
	// Exactly one JSON object on stdout.
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	var res runResult
	if err := dec.Decode(&res); err != nil {
		t.Fatalf("decoding: %v\n%s", err, buf.String())
	}
	if dec.More() {
		t.Fatalf("more than one JSON value emitted:\n%s", buf.String())
	}
	if res.Algorithm != "wakeup/set-register" || res.N != 16 || res.Seed != 1 {
		t.Fatalf("result = %+v", res)
	}
	if res.Rounds == 0 || res.MaxSteps == 0 {
		t.Fatalf("missing run anatomy: %+v", res)
	}
	if res.Bound != 2 { // ⌈log₄ 16⌉
		t.Fatalf("bound = %d, want 2", res.Bound)
	}
	if len(res.Winners) == 0 {
		t.Fatal("no winners recorded")
	}
	if !res.Checks.Spec.OK || !res.Checks.Lemma51.OK || !res.Checks.Theorem61.OK {
		t.Fatalf("checks = %+v", res.Checks)
	}
	if res.Catch != nil {
		t.Fatalf("catch present without -catch: %+v", res.Catch)
	}
}

func TestRunJSONModeCatchesCheater(t *testing.T) {
	var buf bytes.Buffer
	caught, err := run(&buf, options{alg: "cheater", n: 16, seed: 1, tryCatch: true, jsonOut: true})
	if err != nil {
		t.Fatal(err)
	}
	if !caught {
		t.Fatal("cheater with -catch should be caught")
	}
	var res runResult
	if err := json.Unmarshal(buf.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Catch == nil {
		t.Fatal("catch missing from JSON output")
	}
	if res.Catch.Summary == "" || len(res.Catch.NeverStepped) == 0 || len(res.Catch.UpSet) == 0 {
		t.Fatalf("catch = %+v", res.Catch)
	}
	if res.Checks.Theorem61.OK {
		t.Fatal("cheater should fail the Theorem 6.1 check")
	}
	if res.Checks.Theorem61.Detail == "" {
		t.Fatal("failing check carries no detail")
	}
}

func TestRunTextModeCatchesCheater(t *testing.T) {
	var buf bytes.Buffer
	caught, err := run(&buf, options{alg: "cheater", n: 16, seed: 1, tryCatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !caught {
		t.Fatal("cheater with -catch should be caught")
	}
	if !strings.Contains(buf.String(), "catch      winner") {
		t.Fatalf("catch line missing:\n%s", buf.String())
	}
}
