// Command lbworker is the pull side of the distributed execution
// subsystem (internal/dist): it polls an lbserver coordinator for shard
// leases, executes each shard through the same in-process entry points a
// local job would use, streams heartbeats while working, and uploads the
// content-hashed payload. Run as many lbworker processes — on as many
// machines — as the workload deserves; the coordinator merges shard
// results index-ordered, so the fleet's output is byte-identical to a
// serial in-process run of the same spec, and a killed worker only costs
// a lease timeout before its shard is re-leased elsewhere.
//
// The worker is stateless: all ordering, retry bookkeeping, and merge
// logic lives on the coordinator. Stopping a worker (SIGINT/SIGTERM) is
// always safe.
//
// Campaign mode needs no flags: when the server runs coverage-guided
// campaigns (internal/campaign), each round arrives here as leased
// campaign-round shards like any other shardable job. The round spec
// inside the lease carries the frozen round-start corpus, so a freshly
// joined replica is coverage-synchronized by its first grant, and a
// SIGKILLed replica's slots are simply re-leased — the round result, and
// therefore the corpus evolution, is byte-identical regardless of fleet
// size or churn.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jayanti98/internal/dist"
	"jayanti98/internal/obs"
)

type options struct {
	server     string
	id         string
	apiKey     string
	parallel   int
	maxRetries int
	backoff    time.Duration
	backoffMax time.Duration
	logLevel   slog.Level
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("lbworker", flag.ContinueOnError)
	opts := options{}
	var logLevel string
	fs.StringVar(&opts.server, "server", "http://127.0.0.1:8080", "coordinator base URL")
	fs.StringVar(&opts.id, "id", "", "worker identity (default: <hostname>-<pid>)")
	fs.StringVar(&opts.apiKey, "api-key", "", "API key for a coordinator running with -tenants (sent as Authorization: Bearer)")
	fs.IntVar(&opts.parallel, "parallel", 0, "goroutines per shard (0: one per CPU)")
	fs.IntVar(&opts.maxRetries, "max-retries", 8, "consecutive transport failures tolerated before exiting")
	fs.DurationVar(&opts.backoff, "backoff", 100*time.Millisecond, "initial idle/retry poll delay")
	fs.DurationVar(&opts.backoffMax, "backoff-max", 5*time.Second, "exponential backoff cap")
	fs.StringVar(&logLevel, "log-level", "info", "log level: debug, info, warn, error")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if opts.maxRetries < 1 {
		return options{}, fmt.Errorf("-max-retries must be at least 1, got %d", opts.maxRetries)
	}
	if opts.backoff <= 0 || opts.backoffMax < opts.backoff {
		return options{}, fmt.Errorf("backoff range [%s, %s] invalid: need 0 < -backoff ≤ -backoff-max",
			opts.backoff, opts.backoffMax)
	}
	if err := opts.logLevel.UnmarshalText([]byte(logLevel)); err != nil {
		return options{}, fmt.Errorf("-log-level: %w", err)
	}
	return opts, nil
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, opts.logLevel)
	worker, err := dist.NewWorker(dist.WorkerOptions{
		Server:      opts.server,
		ID:          opts.id,
		APIKey:      opts.apiKey,
		Parallel:    opts.parallel,
		MaxRetries:  opts.maxRetries,
		BackoffBase: opts.backoff,
		BackoffMax:  opts.backoffMax,
		Logger:      logger,
	})
	if err != nil {
		logger.Error("startup", "error", err.Error())
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("polling", "server", opts.server, "worker", worker.ID())
	if err := worker.Run(ctx); err != nil {
		logger.Error("worker stopped", "error", err.Error())
		os.Exit(1)
	}
	logger.Info("stopped")
}
