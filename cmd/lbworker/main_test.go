package main

import (
	"log/slog"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	opts, err := parseFlags([]string{
		"-server", "http://10.0.0.1:9000", "-id", "w7", "-parallel", "3",
		"-max-retries", "4", "-backoff", "50ms", "-backoff-max", "2s",
		"-log-level", "warn",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.server != "http://10.0.0.1:9000" || opts.id != "w7" || opts.parallel != 3 ||
		opts.maxRetries != 4 || opts.backoff != 50*time.Millisecond ||
		opts.backoffMax != 2*time.Second || opts.logLevel != slog.LevelWarn {
		t.Fatalf("opts = %+v", opts)
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	opts, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if opts.server != "http://127.0.0.1:8080" || opts.maxRetries != 8 ||
		opts.backoff != 100*time.Millisecond || opts.backoffMax != 5*time.Second ||
		opts.parallel != 0 || opts.id != "" {
		t.Fatalf("defaults = %+v", opts)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	cases := [][]string{
		{"stray"},
		{"-log-level", "shouty"},
		{"-max-retries", "0"},
		{"-backoff", "0s"},
		{"-backoff", "2s", "-backoff-max", "1s"}, // cap below base
	}
	for _, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}
