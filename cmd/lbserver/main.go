// Command lbserver serves the experiment job service over HTTP: submit a
// job spec (lbreport experiments, universal-construction sweeps, schedule
// exploration), poll or stream its progress, and fetch the result. Job
// identity is the SHA-256 of the spec's canonical encoding, so repeated
// submissions of one spec share one job and are served byte-identically
// from the content-addressed result cache.
//
// The server is also the coordinator of the distributed execution
// subsystem (internal/dist): shardable jobs are split into leased work
// units that cmd/lbworker processes pull, execute, and upload; the
// merged result is byte-identical to an in-process run, and with no
// workers polling every job simply runs locally.
//
// Long-lived coverage-guided exploration campaigns (internal/campaign)
// run on top of the job service: each campaign round is submitted as a
// job (so rounds are cached, deduplicated, and distributed like any
// other work), campaign state is checkpointed into the cache directory,
// and a restarted server resumes every checkpointed campaign from its
// last corpus snapshot.
//
//	POST   /v1/jobs             submit a spec (idempotent on content hash)
//	GET    /v1/jobs/{id}        status, progress, result
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs             list jobs (?status= filters)
//	GET    /v1/jobs/{id}/events live progress (Server-Sent Events; resume with Last-Event-ID)
//	GET    /v1/cache/stats      result-cache counters
//	POST   /v1/campaigns        start a campaign (idempotent on content hash)
//	GET    /v1/campaigns        list campaigns with live stats
//	GET    /v1/campaigns/{id}   one campaign's stats and findings
//	DELETE /v1/campaigns/{id}   stop a campaign (state is checkpointed)
//	POST   /v1/shards/lease     lbworker pull protocol: lease a shard
//	POST   /v1/shards/{id}/result    upload a shard payload (content-hashed)
//	POST   /v1/shards/{id}/heartbeat extend a shard lease
//	GET    /v1/shards           coordinator ledger snapshot
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text exposition (internal/obs)
//	GET    /debug/traces        recent span trees as JSON (?flat=1 for the raw list)
//	GET    /debug/pprof/        CPU/heap/goroutine profiles (net/http/pprof)
//	GET    /debug/vars          expvar metrics (counters, cache, latency)
//
// Every request runs through the obs middleware: per-route counters and
// latency histograms on /metrics, one span per request on /debug/traces,
// and one structured JSON log line per request (correlated by request_id;
// job lifecycle lines are correlated by job_id).
//
// With -tenants the /v1/ API is multi-tenant: requests authenticate with
// an API key ("Authorization: Bearer <key>" or "X-API-Key"), each tenant
// has a token-bucket request rate and per-tenant queued/running caps, and
// the scheduler shares workers across tenants by weighted fair-share
// round-robin instead of a single FIFO. With -cache-dir every accepted
// job is also journaled (<id>.job.json): a killed and restarted server
// re-enqueues pending work and serves finished results byte-identically.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops, every
// queued and running job is cancelled, and the worker pool drains within
// -drain-timeout.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"jayanti98/internal/campaign"
	"jayanti98/internal/dist"
	"jayanti98/internal/jobs"
	"jayanti98/internal/obs"
	"jayanti98/internal/tenant"
)

type options struct {
	addr         string
	workers      int
	queueDepth   int
	jobTimeout   time.Duration
	sweepWorkers int
	cacheDir     string
	cacheEntries int
	drainTimeout time.Duration
	logLevel     slog.Level
	traceSpans   int
	dist         bool
	leaseTTL     time.Duration
	distShards   int

	findingsDir     string
	checkpointEvery int

	tenantsPath string
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("lbserver", flag.ContinueOnError)
	opts := options{}
	var logLevel string
	fs.StringVar(&opts.addr, "addr", ":8080", "listen address")
	fs.IntVar(&opts.workers, "workers", 2, "concurrent jobs")
	fs.IntVar(&opts.queueDepth, "queue", 64, "queued-job capacity (submissions beyond it get 503)")
	fs.DurationVar(&opts.jobTimeout, "job-timeout", 0, "per-job deadline (0: none)")
	fs.IntVar(&opts.sweepWorkers, "parallel", runtime.NumCPU(), "sweep workers per job")
	fs.StringVar(&opts.cacheDir, "cache-dir", "", "result-cache directory (empty: memory only)")
	fs.IntVar(&opts.cacheEntries, "cache-entries", 128, "in-memory result-cache capacity")
	fs.DurationVar(&opts.drainTimeout, "drain-timeout", 30*time.Second, "graceful-shutdown deadline")
	fs.StringVar(&logLevel, "log-level", "info", "log level: debug, info, warn, error")
	fs.IntVar(&opts.traceSpans, "trace-spans", obs.DefaultTraceCapacity, "finished spans retained for /debug/traces")
	fs.BoolVar(&opts.dist, "dist", true, "offer shardable jobs to polling lbworkers (jobs run locally when no workers poll)")
	fs.DurationVar(&opts.leaseTTL, "lease-ttl", 15*time.Second, "shard lease lifetime without a heartbeat before re-lease")
	fs.IntVar(&opts.distShards, "dist-shards", 8, "maximum shards one job is split into")
	fs.StringVar(&opts.findingsDir, "campaign-findings", "", "directory for campaign finding replay files (empty: findings only in stats)")
	fs.IntVar(&opts.checkpointEvery, "campaign-checkpoint-every", 1, "checkpoint campaign state every N rounds")
	fs.StringVar(&opts.tenantsPath, "tenants", "", "tenant config JSON: API keys, rate limits, fair-share weights (empty: open single-tenant mode)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if opts.leaseTTL <= 0 {
		return options{}, fmt.Errorf("-lease-ttl must be positive, got %s", opts.leaseTTL)
	}
	if opts.distShards < 1 {
		return options{}, fmt.Errorf("-dist-shards must be at least 1, got %d", opts.distShards)
	}
	if err := opts.logLevel.UnmarshalText([]byte(logLevel)); err != nil {
		return options{}, fmt.Errorf("-log-level: %w", err)
	}
	return opts, nil
}

// activeScheduler backs the expvar readers. expvar names are process-global
// and cannot be unpublished, so the vars indirect through this pointer
// instead of closing over one scheduler (tests build several). The obs
// registry's GaugeFunc/CounterFunc readings use the same trick internally:
// the most recently built scheduler re-registers the reader funcs.
var activeScheduler atomic.Pointer[jobs.Scheduler]

// publishVars registers the service metrics with expvar once per process:
// job counters (submitted, completed, failed, canceled, queue depth),
// cache effectiveness, and per-phase latency summaries (median/p95 ms).
// The same readings are exposed in Prometheus form on /metrics.
func publishVars() {
	if expvar.Get("jobs") != nil {
		return
	}
	expvar.Publish("jobs", expvar.Func(func() any {
		if s := activeScheduler.Load(); s != nil {
			return s.Counters()
		}
		return nil
	}))
	expvar.Publish("jobs.cache", expvar.Func(func() any {
		if s := activeScheduler.Load(); s != nil {
			return s.Cache().Stats()
		}
		return nil
	}))
	expvar.Publish("jobs.phase_latency_ms", expvar.Func(func() any {
		if s := activeScheduler.Load(); s != nil {
			return s.PhaseLatencies()
		}
		return nil
	}))
}

// newMux mounts the job API, the distributed shard protocol (when a
// coordinator is configured), and the observability endpoints —
// /metrics, /debug/traces, /debug/pprof, /debug/vars — and wraps
// everything in the obs middleware (per-route metrics, request spans,
// request log lines).
func newMux(s *jobs.Scheduler, coord *dist.Coordinator, mgr *campaign.Manager, tenants *tenant.Registry, reg *obs.Registry, tracer *obs.Tracer, logger *slog.Logger) http.Handler {
	activeScheduler.Store(s)
	publishVars()
	mux := http.NewServeMux()
	jobsMux := jobs.NewHandler(s)
	mux.Handle("/", jobsMux)
	if coord != nil {
		coord.RegisterRoutes(mux)
	}
	if mgr != nil {
		campaign.RegisterRoutes(mux, mgr)
	}
	mux.Handle("GET /metrics", obs.MetricsHandler(reg))
	mux.Handle("GET /debug/traces", obs.TracesHandler(tracer))
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	// Tenant auth sits inside the obs middleware so 401/429 rejections
	// still get per-route metrics, spans, and request log lines.
	guarded := tenant.Middleware(mux, tenant.MiddlewareOptions{Registry: tenants, Obs: reg})
	return obs.Middleware(guarded, obs.MiddlewareOptions{
		Registry: reg,
		Tracer:   tracer,
		Logger:   logger,
		// The jobs API is mounted behind "/" on the outer mux, so the
		// route resolver consults the inner API mux for the granular
		// "POST /v1/jobs"-style patterns.
		Route: obs.RouteFromMux(mux, jobsMux),
	})
}

// newCoordinator builds the distributed-execution coordinator, or nil
// with -dist=false (jobs then always run in-process).
func newCoordinator(opts options, reg *obs.Registry, logger *slog.Logger) *dist.Coordinator {
	if !opts.dist {
		return nil
	}
	return dist.NewCoordinator(dist.Options{
		LeaseTTL:  opts.leaseTTL,
		MaxShards: opts.distShards,
		Obs:       reg,
		Logger:    logger,
	})
}

func newScheduler(opts options, coord *dist.Coordinator, tenants *tenant.Registry, reg *obs.Registry, tracer *obs.Tracer, logger *slog.Logger) (*jobs.Scheduler, error) {
	cache, err := jobs.NewCache(opts.cacheEntries, opts.cacheDir)
	if err != nil {
		return nil, err
	}
	jopts := jobs.Options{
		Workers:       opts.workers,
		QueueDepth:    opts.queueDepth,
		JobTimeout:    opts.jobTimeout,
		SweepParallel: opts.sweepWorkers,
		Cache:         cache,
		Tenants:       tenants,
		Obs:           reg,
		Tracer:        tracer,
		Logger:        logger,
	}
	if coord != nil {
		// The interface value must stay nil when the coordinator is nil —
		// a typed nil would make the scheduler call through it.
		jopts.Dist = coord
	}
	return jobs.NewScheduler(jopts)
}

// loadTenants builds the tenant registry: open single-tenant mode with
// no -tenants flag, the validated config file otherwise.
func loadTenants(path string) (*tenant.Registry, error) {
	if path == "" {
		return tenant.Open(), nil
	}
	reg, err := tenant.Load(path)
	if err != nil {
		return nil, fmt.Errorf("-tenants: %w", err)
	}
	return reg, nil
}

// resumeCampaigns restarts every campaign the previous server life
// checkpointed into the cache directory. A record that no longer
// decodes (version skew, manual tampering) is logged and skipped — one
// bad checkpoint must not keep the server from booting.
func resumeCampaigns(sched *jobs.Scheduler, mgr *campaign.Manager, logger *slog.Logger) {
	for _, id := range sched.Cache().Checkpoints() {
		if _, err := mgr.Resume(id); err != nil {
			logger.Warn("campaign resume", "campaign_id", obs.ShortID(id), "error", err.Error())
			continue
		}
		logger.Info("campaign resumed", "campaign_id", obs.ShortID(id))
	}
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, opts.logLevel)
	reg := obs.Default()
	tracer := obs.NewTracer(opts.traceSpans)
	coord := newCoordinator(opts, reg, logger)
	tenants, err := loadTenants(opts.tenantsPath)
	if err != nil {
		logger.Error("startup", "error", err.Error())
		os.Exit(1)
	}
	sched, err := newScheduler(opts, coord, tenants, reg, tracer, logger)
	if err != nil {
		logger.Error("startup", "error", err.Error())
		os.Exit(1)
	}
	mgr := campaign.NewManager(campaign.ManagerOptions{
		Executor:        jobs.NewRoundExecutor(sched),
		Checkpointer:    sched.Cache(),
		FindingsDir:     opts.findingsDir,
		CheckpointEvery: opts.checkpointEvery,
		Obs:             reg,
		Tracer:          tracer,
		Logger:          logger,
	})
	resumeCampaigns(sched, mgr, logger)
	srv := &http.Server{Addr: opts.addr, Handler: newMux(sched, coord, mgr, tenants, reg, tracer, logger)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening",
		"addr", opts.addr, "workers", opts.workers, "queue", opts.queueDepth, "cache_dir", opts.cacheDir)

	select {
	case err := <-errc:
		logger.Error("serve", "error", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down: draining jobs", "drain_timeout", opts.drainTimeout.String())
	shCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Error("http shutdown", "error", err.Error())
	}
	// Campaigns before the scheduler: each campaign writes its final
	// checkpoint and releases its in-flight round job before the worker
	// pool drains.
	if err := mgr.Shutdown(shCtx); err != nil {
		logger.Error("campaign shutdown", "error", err.Error())
	}
	if err := sched.Shutdown(shCtx); err != nil {
		logger.Error("scheduler shutdown", "error", err.Error())
	}
	logger.Info("drained")
}
