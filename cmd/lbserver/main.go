// Command lbserver serves the experiment job service over HTTP: submit a
// job spec (lbreport experiments, universal-construction sweeps, schedule
// exploration), poll or stream its progress, and fetch the result. Job
// identity is the SHA-256 of the spec's canonical encoding, so repeated
// submissions of one spec share one job and are served byte-identically
// from the content-addressed result cache.
//
//	POST   /v1/jobs             submit a spec (idempotent on content hash)
//	GET    /v1/jobs/{id}        status, progress, result
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/events NDJSON progress stream
//	GET    /v1/cache/stats      result-cache counters
//	GET    /healthz             liveness
//	GET    /debug/vars          expvar metrics (counters, cache, latency)
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops, every
// queued and running job is cancelled, and the worker pool drains within
// -drain-timeout.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"jayanti98/internal/jobs"
)

type options struct {
	addr         string
	workers      int
	queueDepth   int
	jobTimeout   time.Duration
	sweepWorkers int
	cacheDir     string
	cacheEntries int
	drainTimeout time.Duration
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("lbserver", flag.ContinueOnError)
	opts := options{}
	fs.StringVar(&opts.addr, "addr", ":8080", "listen address")
	fs.IntVar(&opts.workers, "workers", 2, "concurrent jobs")
	fs.IntVar(&opts.queueDepth, "queue", 64, "queued-job capacity (submissions beyond it get 503)")
	fs.DurationVar(&opts.jobTimeout, "job-timeout", 0, "per-job deadline (0: none)")
	fs.IntVar(&opts.sweepWorkers, "parallel", runtime.NumCPU(), "sweep workers per job")
	fs.StringVar(&opts.cacheDir, "cache-dir", "", "result-cache directory (empty: memory only)")
	fs.IntVar(&opts.cacheEntries, "cache-entries", 128, "in-memory result-cache capacity")
	fs.DurationVar(&opts.drainTimeout, "drain-timeout", 30*time.Second, "graceful-shutdown deadline")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return opts, nil
}

// activeScheduler backs the expvar readers. expvar names are process-global
// and cannot be unpublished, so the vars indirect through this pointer
// instead of closing over one scheduler (tests build several).
var activeScheduler atomic.Pointer[jobs.Scheduler]

// publishVars registers the service metrics with expvar once per process:
// job counters (submitted, completed, failed, canceled, queue depth),
// cache effectiveness, and per-phase latency summaries (median/p95 ms).
func publishVars() {
	if expvar.Get("jobs") != nil {
		return
	}
	expvar.Publish("jobs", expvar.Func(func() any {
		if s := activeScheduler.Load(); s != nil {
			return s.Counters()
		}
		return nil
	}))
	expvar.Publish("jobs.cache", expvar.Func(func() any {
		if s := activeScheduler.Load(); s != nil {
			return s.Cache().Stats()
		}
		return nil
	}))
	expvar.Publish("jobs.phase_latency_ms", expvar.Func(func() any {
		if s := activeScheduler.Load(); s != nil {
			return s.PhaseLatencies()
		}
		return nil
	}))
}

// newMux mounts the job API plus the expvar endpoint.
func newMux(s *jobs.Scheduler) http.Handler {
	activeScheduler.Store(s)
	publishVars()
	mux := http.NewServeMux()
	mux.Handle("/", jobs.NewHandler(s))
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

func newScheduler(opts options) (*jobs.Scheduler, error) {
	cache, err := jobs.NewCache(opts.cacheEntries, opts.cacheDir)
	if err != nil {
		return nil, err
	}
	return jobs.NewScheduler(jobs.Options{
		Workers:       opts.workers,
		QueueDepth:    opts.queueDepth,
		JobTimeout:    opts.jobTimeout,
		SweepParallel: opts.sweepWorkers,
		Cache:         cache,
	})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbserver: ")
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	sched, err := newScheduler(opts)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Addr: opts.addr, Handler: newMux(sched)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("listening on %s (workers %d, queue %d, cache dir %q)",
		opts.addr, opts.workers, opts.queueDepth, opts.cacheDir)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down: draining jobs for up to %s", opts.drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := sched.Shutdown(shCtx); err != nil {
		log.Printf("scheduler shutdown: %v", err)
	}
	log.Printf("drained")
}
