package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"jayanti98/internal/campaign"
	"jayanti98/internal/jobs"
	"jayanti98/internal/obs"
	"jayanti98/internal/tenant"
)

func TestParseFlags(t *testing.T) {
	opts, err := parseFlags([]string{
		"-addr", ":9999", "-workers", "4", "-queue", "8",
		"-job-timeout", "5s", "-cache-dir", "/tmp/x", "-cache-entries", "7",
		"-drain-timeout", "2s", "-log-level", "debug", "-trace-spans", "32",
		"-dist=false", "-lease-ttl", "3s", "-dist-shards", "5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":9999" || opts.workers != 4 || opts.queueDepth != 8 ||
		opts.jobTimeout != 5*time.Second || opts.cacheDir != "/tmp/x" ||
		opts.cacheEntries != 7 || opts.drainTimeout != 2*time.Second ||
		opts.logLevel != slog.LevelDebug || opts.traceSpans != 32 ||
		opts.dist || opts.leaseTTL != 3*time.Second || opts.distShards != 5 {
		t.Fatalf("opts = %+v", opts)
	}
	defaults, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !defaults.dist || defaults.leaseTTL != 15*time.Second || defaults.distShards != 8 {
		t.Fatalf("dist defaults = %+v", defaults)
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Fatal("positional arguments accepted")
	}
	if _, err := parseFlags([]string{"-log-level", "shouty"}); err == nil {
		t.Fatal("bad log level accepted")
	}
	if _, err := parseFlags([]string{"-lease-ttl", "-1s"}); err == nil {
		t.Fatal("negative lease TTL accepted")
	}
	if _, err := parseFlags([]string{"-dist-shards", "0"}); err == nil {
		t.Fatal("zero shard bound accepted")
	}
}

// newTestServer builds a scheduler and mux over fresh observability sinks
// so assertions see only this test's activity.
func newTestServer(t *testing.T, opts options) (*jobs.Scheduler, *httptest.Server, *obs.Registry, *obs.Tracer, *bytes.Buffer) {
	t.Helper()
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(64)
	var logBuf bytes.Buffer
	logger := obs.NewLogger(&logBuf, slog.LevelDebug)
	coord := newCoordinator(opts, reg, logger)
	sched, err := newScheduler(opts, coord, tenant.Open(), reg, tracer, logger)
	if err != nil {
		t.Fatal(err)
	}
	mgr := campaign.NewManager(campaign.ManagerOptions{
		Executor:     jobs.NewRoundExecutor(sched),
		Checkpointer: sched.Cache(),
		Obs:          reg,
		Tracer:       tracer,
		Logger:       logger,
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("campaign shutdown: %v", err)
		}
		if err := sched.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	srv := httptest.NewServer(newMux(sched, coord, mgr, tenant.Open(), reg, tracer, logger))
	t.Cleanup(srv.Close)
	return sched, srv, reg, tracer, &logBuf
}

func TestServerEndToEnd(t *testing.T) {
	opts, err := parseFlags([]string{"-workers", "2", "-cache-dir", t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	sched, srv, reg, tracer, logBuf := newTestServer(t, opts)

	// Liveness and every metrics surface come up before any job runs.
	for _, path := range []string{"/healthz", "/debug/vars", "/v1/cache/stats", "/metrics", "/debug/traces", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}

	spec := `{"kind":"explore","explore":{"alg":"central","mode":"exhaustive"}}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		t.Fatal(err)
	}
	var view jobs.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := sched.Wait(ctx, view.ID)
	if err != nil || final.Status != jobs.StatusDone {
		t.Fatalf("job: %v, %+v", err, final)
	}
	// Resubmit: a cache/dedup hit for the hit-counter assertions below.
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmission: %d, want 200", resp.StatusCode)
	}

	// The expvar endpoint reflects the completed job.
	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Jobs  jobs.Counters   `json:"jobs"`
		Cache jobs.CacheStats `json:"jobs.cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vars.Jobs.Submitted != 1 || vars.Jobs.Completed != 1 {
		t.Fatalf("expvar jobs = %+v", vars.Jobs)
	}
	if vars.Cache.Entries != 1 {
		t.Fatalf("expvar cache = %+v", vars.Cache)
	}

	// /metrics: completed-job counter, populated HTTP latency histogram,
	// cache and dedup counters — the acceptance surface.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"jobs_completed_total 1",
		"jobs_submitted_total 1",
		"jobs_dedup_inflight_total 1",
		"jobs_cache_served_total 1",
		`http_requests_total{code="201",route="POST /v1/jobs"} 1`,
		"jobs_cache_misses_total",
		"jobs_cache_hits_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if m := regexp.MustCompile(`http_request_duration_seconds_count\{route="POST /v1/jobs"\} (\d+)`).FindStringSubmatch(metrics); m == nil || m[1] == "0" {
		t.Errorf("HTTP latency histogram not populated:\n%s", metrics)
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", metrics)
	}

	// /debug/traces: a span tree rooted at the job covering the
	// scheduler → explore phase, plus per-request spans.
	trees := tracer.Trees()
	var jobTree *obs.SpanTree
	for _, tr := range trees {
		if tr.Name == "job explore" {
			jobTree = tr
		}
	}
	if jobTree == nil {
		t.Fatalf("no job span among %d trees", len(trees))
	}
	if jobTree.Attrs["status"] != "done" || len(jobTree.Children) == 0 || jobTree.Children[0].Name != "explore exhaustive" {
		t.Fatalf("job tree = %+v (children %+v)", jobTree.SpanData, jobTree.Children)
	}
	resp, err = http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var gotTrees []obs.SpanTree
	if err := json.NewDecoder(resp.Body).Decode(&gotTrees); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(gotTrees) == 0 {
		t.Fatal("/debug/traces returned no trees")
	}

	// Structured logs: request lines with request_id, job lines with job_id.
	logs := logBuf.String()
	if !strings.Contains(logs, `"request_id"`) || !strings.Contains(logs, `"job_id"`) {
		t.Fatalf("log stream missing correlation ids:\n%s", logs)
	}
	if !strings.Contains(logs, `"msg":"job finished"`) || !strings.Contains(logs, `"status":"done"`) {
		t.Fatalf("job lifecycle lines missing:\n%s", logs)
	}

	// Registry snapshot counts the job exactly once despite two submissions.
	if got := reg.Counter("jobs_submitted_total", "", nil).Value(); got != 1 {
		t.Fatalf("jobs_submitted_total = %d", got)
	}

	// The sweep engine and adversary-loop counters live on the process
	// Default registry (the one the real server exposes); the explore job
	// ran work through the pool, so they must be nonzero by now.
	for _, name := range []string{"sweep_tasks_total"} {
		if got := obs.Default().Counter(name, "", nil).Value(); got == 0 {
			t.Errorf("%s = 0 on the default registry", name)
		}
	}
}

func TestNewMuxIdempotentExpvars(t *testing.T) {
	// Two servers in one process must not collide on expvar names; the
	// metrics follow the most recent scheduler.
	for i := 0; i < 2; i++ {
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(8)
		logger := obs.NopLogger()
		sched, err := newScheduler(options{workers: 1, queueDepth: 4, cacheEntries: 4}, nil, tenant.Open(), reg, tracer, logger)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(newMux(sched, nil, nil, tenant.Open(), reg, tracer, logger))
		for _, path := range []string{"/debug/vars", "/metrics"} {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d: %s %d", i, path, resp.StatusCode)
			}
		}
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := sched.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
	}
}
