package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"jayanti98/internal/jobs"
)

func TestParseFlags(t *testing.T) {
	opts, err := parseFlags([]string{
		"-addr", ":9999", "-workers", "4", "-queue", "8",
		"-job-timeout", "5s", "-cache-dir", "/tmp/x", "-cache-entries", "7",
		"-drain-timeout", "2s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":9999" || opts.workers != 4 || opts.queueDepth != 8 ||
		opts.jobTimeout != 5*time.Second || opts.cacheDir != "/tmp/x" ||
		opts.cacheEntries != 7 || opts.drainTimeout != 2*time.Second {
		t.Fatalf("opts = %+v", opts)
	}
	if _, err := parseFlags([]string{"stray"}); err == nil {
		t.Fatal("positional arguments accepted")
	}
}

func TestServerEndToEnd(t *testing.T) {
	opts, err := parseFlags([]string{"-workers", "2", "-cache-dir", t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := newScheduler(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := sched.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	srv := httptest.NewServer(newMux(sched))
	defer srv.Close()

	// Liveness and metrics come up before any job runs.
	for _, path := range []string{"/healthz", "/debug/vars", "/v1/cache/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}

	spec := `{"kind":"explore","explore":{"alg":"central","mode":"exhaustive"}}`
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		t.Fatal(err)
	}
	var view jobs.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := sched.Wait(ctx, view.ID)
	if err != nil || final.Status != jobs.StatusDone {
		t.Fatalf("job: %v, %+v", err, final)
	}

	// The expvar endpoint reflects the completed job.
	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Jobs  jobs.Counters   `json:"jobs"`
		Cache jobs.CacheStats `json:"jobs.cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vars.Jobs.Submitted != 1 || vars.Jobs.Completed != 1 {
		t.Fatalf("expvar jobs = %+v", vars.Jobs)
	}
	if vars.Cache.Entries != 1 {
		t.Fatalf("expvar cache = %+v", vars.Cache)
	}
}

func TestNewMuxIdempotentExpvars(t *testing.T) {
	// Two servers in one process must not collide on expvar names; the
	// metrics follow the most recent scheduler.
	for i := 0; i < 2; i++ {
		sched, err := newScheduler(options{workers: 1, queueDepth: 4, cacheEntries: 4})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(newMux(sched))
		resp, err := http.Get(srv.URL + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: /debug/vars %d", i, resp.StatusCode)
		}
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := sched.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
	}
}
