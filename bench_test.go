package jayanti98_test

// One benchmark per experiment of DESIGN.md §3 (E1–E12), plus micro
// benchmarks of the substrates. The forced-steps metrics are reported via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the numbers
// recorded in EXPERIMENTS.md alongside wall-clock costs.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"jayanti98/internal/algos"
	"jayanti98/internal/algos/bwllsc"
	"jayanti98/internal/campaign"
	"jayanti98/internal/core"
	"jayanti98/internal/explore"
	"jayanti98/internal/linz"
	"jayanti98/internal/llsc"
	"jayanti98/internal/lowerbound"
	"jayanti98/internal/machine"
	"jayanti98/internal/moveplan"
	"jayanti98/internal/objtype"
	"jayanti98/internal/sched"
	"jayanti98/internal/shmem"
	"jayanti98/internal/sweep"
	"jayanti98/internal/universal"
	"jayanti98/internal/vmachine"
	"jayanti98/internal/wakeup"
)

var benchNs = []int{4, 16, 64, 256}

// BenchmarkE1WakeupForcedSteps measures the adversary-forced cost of the
// correct deterministic wakeup algorithms (Theorem 6.1).
func BenchmarkE1WakeupForcedSteps(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("set-register/n=%d", n), func(b *testing.B) {
			var last lowerbound.WakeupResult
			for i := 0; i < b.N; i++ {
				res, err := lowerbound.MeasureWakeup(wakeup.SetRegister(), n, machine.ZeroTosses)
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatalf("checks failed: %+v", res)
				}
				last = res
			}
			b.ReportMetric(float64(last.WinnerSteps), "winner-steps")
			b.ReportMetric(float64(last.Bound), "log4n-bound")
			// Adversary-path throughput: every iteration replays the same
			// deterministic run, so TotalSteps*N over the wall clock is the
			// shared-access rate the register file sustains.
			b.ReportMetric(float64(last.TotalSteps)*float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
		})
	}
}

// BenchmarkE2RandomizedWakeup estimates the expected winner cost of the
// randomized double-register algorithm (Lemma 3.1 / Theorem 6.1) through
// the parallel sweep engine, at the same worker count cmd/lbreport uses.
func BenchmarkE2RandomizedWakeup(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := lowerbound.ExpectedComplexityParallel(
					func(int) machine.Algorithm { return wakeup.DoubleRegister() },
					n, 10, int64(i), runtime.GOMAXPROCS(0))
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Winner.Mean
			}
			b.ReportMetric(mean, "E-winner-steps")
		})
	}
}

// BenchmarkSweepEngine measures the worker-pool sweep engine on the E1
// set-register grid at increasing parallelism — the wall-clock win of
// `lbreport -parallel N` over the serial run, isolated from rendering.
func BenchmarkSweepEngine(b *testing.B) {
	ns := []int{2, 4, 8, 16, 32, 64}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := lowerbound.SweepWakeupParallel(
					func(n int) machine.Algorithm { return wakeup.SetRegister() },
					ns, machine.ZeroTosses, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(ns) {
					b.Fatalf("got %d results", len(results))
				}
			}
		})
	}
}

// BenchmarkE5IndistinguishabilityParallel measures the fanned-out
// per-process (S,A)-replays — the report's quadratic hot spot.
func BenchmarkE5IndistinguishabilityParallel(b *testing.B) {
	const n = 16
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				checked, err := lowerbound.VerifyIndistinguishabilityParallel(
					wakeup.SetRegister(), n, machine.ZeroTosses, workers)
				if err != nil {
					b.Fatal(err)
				}
				if checked != n {
					b.Fatalf("checked %d", checked)
				}
			}
		})
	}
}

// BenchmarkSeedDerivation measures the per-item seed hash — it must stay
// negligible next to a single simulated run.
func BenchmarkSeedDerivation(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += sweep.Seed("E2", "double-register", 64, i)
	}
	_ = sink
}

// BenchmarkE3TypeLowerBounds runs every Theorem 6.2 reduction over the
// group-update construction at n = 16.
func BenchmarkE3TypeLowerBounds(b *testing.B) {
	const n = 16
	for _, spec := range wakeup.Reductions() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var last lowerbound.WakeupResult
			for i := 0; i < b.N; i++ {
				alg, _, err := lowerbound.BuildReduction(spec, "group-update", n)
				if err != nil {
					b.Fatal(err)
				}
				res, err := lowerbound.MeasureWakeup(alg, n, machine.ZeroTosses)
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatalf("checks failed: %+v", res)
				}
				last = res
			}
			b.ReportMetric(float64(last.WinnerSteps), "winner-steps")
		})
	}
}

// BenchmarkE4UPTracking isolates the UP-set update rules (Lemma 5.1
// bookkeeping) by running the adversary with them on.
func BenchmarkE4UPTracking(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := core.RunAll(wakeup.SetRegister(), n, machine.ZeroTosses, core.Config{NoHistory: true})
				if err != nil {
					b.Fatal(err)
				}
				if err := core.CheckLemma51(run); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5Indistinguishability measures the (S,A)-run replay plus the
// Lemma 5.2 check for every process of a run.
func BenchmarkE5Indistinguishability(b *testing.B) {
	for _, n := range []int{8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lowerbound.VerifyIndistinguishability(wakeup.SetRegister(), n, machine.ZeroTosses); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6CatchCheater measures the full Theorem 6.1 catch pipeline.
func BenchmarkE6CatchCheater(b *testing.B) {
	const n = 64
	for i := 0; i < b.N; i++ {
		run, err := core.RunAll(wakeup.Cheater(), n, machine.ZeroTosses, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		catch, err := core.CatchFastWakeup(run)
		if err != nil {
			b.Fatal(err)
		}
		if catch == nil {
			b.Fatal("cheater not caught")
		}
	}
}

// BenchmarkE7GroupUpdate measures the adversary-forced per-op cost of the
// tight O(log n) construction.
func BenchmarkE7GroupUpdate(b *testing.B) {
	benchConstruction(b, func(n int) universal.Construction {
		return universal.NewGroupUpdate(objtype.NewFetchIncrement(64), n, 0)
	})
}

// BenchmarkE8Herlihy measures the Θ(n) baseline construction.
func BenchmarkE8Herlihy(b *testing.B) {
	benchConstruction(b, func(n int) universal.Construction {
		return universal.NewHerlihy(objtype.NewFetchIncrement(64), n, 0)
	})
}

func benchConstruction(b *testing.B, mk func(n int) universal.Construction) {
	b.Helper()
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var last lowerbound.ConstructionResult
			for i := 0; i < b.N; i++ {
				res, err := lowerbound.MeasureConstruction(mk, lowerbound.FetchIncOp, n)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.MaxSteps), "forced-steps/op")
			b.ReportMetric(float64(last.LowerBound), "log4n-bound")
		})
	}
}

// BenchmarkE9MovePlans measures secretive-schedule construction on the
// Section 4 chain workload.
func BenchmarkE9MovePlans(b *testing.B) {
	for _, n := range []int{64, 1024, 4096} {
		plan := make(moveplan.Plan, n)
		for i := 0; i < n; i++ {
			plan[i] = moveplan.Move{Src: i, Dst: i + 1}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var sigma moveplan.Schedule
			for i := 0; i < b.N; i++ {
				sigma = moveplan.Secretive(plan)
			}
			if got := moveplan.MaxMovers(plan, sigma); got > 2 {
				b.Fatalf("max movers = %d", got)
			}
		})
	}
}

// BenchmarkE10RMWUnitTime measures the Section 7 unit-time universal
// object.
func BenchmarkE10RMWUnitTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.RMWUnitTime(objtype.NewFetchIncrement(64), 256, lowerbound.FetchIncOp)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Correct {
			b.Fatal("incorrect responses")
		}
	}
	b.ReportMetric(1, "steps/op")
}

// --- substrate micro-benchmarks ---

// BenchmarkShmemLLSC measures the simulated memory's LL+SC pair.
func BenchmarkShmemLLSC(b *testing.B) {
	m := shmem.New()
	for i := 0; i < b.N; i++ {
		m.Apply(0, shmem.Op{Kind: shmem.OpLL, Reg: 0})
		m.Apply(0, shmem.Op{Kind: shmem.OpSC, Reg: 0, Arg: i})
	}
}

// BenchmarkLLSCConcurrent measures the concurrent memory under parallel
// LL/SC contention.
func BenchmarkLLSCConcurrent(b *testing.B) {
	const n = 8
	m := llsc.New(n)
	var pidCounter int32
	var mu sync.Mutex
	nextPid := func() int {
		mu.Lock()
		defer mu.Unlock()
		pid := int(pidCounter) % n
		pidCounter++
		return pid
	}
	b.RunParallel(func(pb *testing.PB) {
		h := m.Handle(nextPid())
		for pb.Next() {
			h.LL(0)
			h.SC(0, 1)
		}
	})
}

// BenchmarkGroupUpdateConcurrent measures one fetch&increment through the
// group-update construction on the concurrent backend.
func BenchmarkGroupUpdateConcurrent(b *testing.B) {
	const n = 8
	obj := universal.NewGroupUpdate(objtype.NewFetchIncrement(64), n, 0)
	m := llsc.New(n)
	h := m.Handle(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj.Invoke(h, objtype.Op{Name: objtype.OpFetchIncrement})
	}
}

// BenchmarkMachineStep measures the coroutine handshake per shared step.
func BenchmarkMachineStep(b *testing.B) {
	alg := machine.New("spin", func(e *machine.Env) shmem.Value {
		for {
			e.Read(0)
		}
	})
	m := machine.StartEngine(alg, 0, 1, machine.EngineGoroutine)
	defer m.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Peek()
		m.DeliverOpResponse(shmem.Response{OK: false, Val: nil})
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

// BenchmarkVMStep measures the bytecode VM's per-shared-step cost on the
// same spin workload as BenchmarkMachineStep. The interpreter pays two
// channel handshakes and a goroutine wakeup per step; the VM resumes
// in-line on the caller's stack, so the gap between the two numbers is the
// engine speedup every adversary and exploration loop inherits.
func BenchmarkVMStep(b *testing.B) {
	chunk := vmachine.MustCompile(&vmachine.Program{
		Name: "spin",
		Body: []vmachine.Stmt{
			vmachine.LoopS{Body: []vmachine.Stmt{
				vmachine.DoS{E: vmachine.ReadE{Reg: vmachine.ConstE{V: vmachine.Int(0)}}},
			}},
		},
	})
	alg := machine.NewCompiled("spin", func(e *machine.Env) shmem.Value {
		for {
			e.Read(0)
		}
	}, chunk)
	m := machine.StartEngine(alg, 0, 1, machine.EngineVM)
	defer m.Close()
	if m.EngineName() != "vm" {
		b.Fatalf("engine = %q", m.EngineName())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Peek()
		m.DeliverOpResponse(shmem.Response{OK: false, Val: nil})
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

// BenchmarkE11CountingNetwork measures the counting-network wakeup (the
// semantics-exploiting, bounded-register alternative).
func BenchmarkE11CountingNetwork(b *testing.B) {
	for _, n := range benchNs {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var last lowerbound.WakeupResult
			for i := 0; i < b.N; i++ {
				res, err := lowerbound.MeasureWakeup(wakeup.CountingNetwork(n), n, machine.ZeroTosses)
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatalf("checks failed: %+v", res)
				}
				last = res
			}
			b.ReportMetric(float64(last.WinnerSteps), "winner-steps")
			b.ReportMetric(float64(last.Bound), "log4n-bound")
		})
	}
}

// BenchmarkE12RegisterWidth measures the register-width profile run.
func BenchmarkE12RegisterWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lowerbound.RegisterWidthProfile(32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinearizabilityCheck measures the Wing-Gong checker on a
// concurrent counter history.
func BenchmarkLinearizabilityCheck(b *testing.B) {
	const n, k = 4, 3
	typ := objtype.NewFetchIncrement(16)
	obj := universal.NewGroupUpdate(typ, n, 0)
	m := llsc.New(n)
	rec := linz.NewRecorder(n)
	var wg sync.WaitGroup
	wg.Add(n)
	for pid := 0; pid < n; pid++ {
		go func(pid int) {
			defer wg.Done()
			h := m.Handle(pid)
			for i := 0; i < k; i++ {
				op := objtype.Op{Name: objtype.OpFetchIncrement}
				inv := rec.Begin()
				resp := obj.Invoke(h, op)
				rec.End(pid, op, resp, inv)
			}
		}(pid)
	}
	wg.Wait()
	h := rec.History()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := linz.Check(typ, h)
		if err != nil || !res.Linearizable {
			b.Fatalf("check failed: %v %v", err, res)
		}
	}
}

// BenchmarkPsetChurn measures the Pset lifecycle the bitset register file
// is built around: n processes link a register, then one successful SC
// clears all n links at once. Run with -benchmem: the warm loop must be
// allocation-free (the clear zeroes the bitset words in place; the old
// map representation allocated a fresh map per successful SC).
func BenchmarkPsetChurn(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := shmem.New()
			for pid := 0; pid < n; pid++ {
				m.Apply(pid, shmem.Op{Kind: shmem.OpLL, Reg: 0})
			}
			m.Apply(0, shmem.Op{Kind: shmem.OpSC, Reg: 0, Arg: -1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for pid := 0; pid < n; pid++ {
					m.Apply(pid, shmem.Op{Kind: shmem.OpLL, Reg: 0})
				}
				if r := m.Apply(0, shmem.Op{Kind: shmem.OpSC, Reg: 0, Arg: i}); !r.OK {
					b.Fatal("SC by a linked process must succeed")
				}
			}
		})
	}
}

// BenchmarkValuesEqual measures the register-value comparison across the
// scalar fast path and the reflect.DeepEqual fallback.
func BenchmarkValuesEqual(b *testing.B) {
	pairs := []struct {
		name string
		a, v shmem.Value
	}{
		{"int", 41, 41},
		{"int-mismatch", 41, 42},
		{"string", "wakeup", "wakeup"},
		{"nil", nil, nil},
		{"slice-fallback", []int{1, 2}, []int{1, 2}},
	}
	for _, p := range pairs {
		b.Run(p.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				shmem.ValuesEqual(p.a, p.v)
			}
		})
	}
}

// BenchmarkMaxSteps measures a shared step plus the worst-process query —
// the pair the adversary executes at every decision point. MaxSteps is
// maintained incrementally in Apply, so the query itself is O(1).
func BenchmarkMaxSteps(b *testing.B) {
	m := shmem.New()
	for i := 0; i < b.N; i++ {
		m.Apply(i%16, shmem.Op{Kind: shmem.OpLL, Reg: 0})
		if steps, pid := m.MaxSteps(); steps == 0 || pid < 0 {
			b.Fatal("impossible MaxSteps")
		}
	}
}

// BenchmarkLLSCFingerprint measures the concurrent memory's canonical
// state rendering, which sits on the exploration memoization hot path.
func BenchmarkLLSCFingerprint(b *testing.B) {
	const n = 4
	m := llsc.New(n)
	for pid := 0; pid < n; pid++ {
		h := m.Handle(pid)
		for reg := 0; reg < 8; reg++ {
			h.LL(reg)
			if reg%2 == 0 {
				h.SC(reg, pid*100+reg)
			}
		}
	}
	var dst []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = m.AppendFingerprint(dst[:0])
	}
	if len(dst) == 0 {
		b.Fatal("empty fingerprint")
	}
}

// BenchmarkExhaustiveExplore measures the full DFS over the central
// construction's n=2 schedule space — the end-to-end exploration hot path
// (prefix re-execution, binary memo keys, visited-set lookups). The
// runs/sec metric is the paper-level throughput bench-compare gates on.
func BenchmarkExhaustiveExplore(b *testing.B) {
	var runs int
	for i := 0; i < b.N; i++ {
		rep, err := explore.Exhaustive(explore.Config{Alg: "central", Object: "fetch-increment", N: 2, OpsPerProc: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if rep.States != 20 || rep.Runs != 27 {
			b.Fatalf("unexpected counts: states=%d runs=%d", rep.States, rep.Runs)
		}
		runs += rep.Runs
	}
	b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/sec")
}

// BenchmarkCampaignExec measures campaign-round execution throughput —
// the coverage-guided hot path (guided runs with state-digest tracing,
// corpus mutation, slot-order folds) that a long-lived campaign spends
// its life in. One iteration executes and folds a full 32-input round
// over the group-update construction. The execs/sec metric is the
// paper-level throughput bench-compare gates on.
func BenchmarkCampaignExec(b *testing.B) {
	spec := campaign.Spec{
		Alg: "group-update", Object: "fetch-increment", N: 2, BatchSize: 32, MaxCorpus: 16,
	}
	spec.Normalize()
	st := campaign.NewState(spec)
	var execs int64
	for i := 0; i < b.N; i++ {
		rr, err := campaign.ExecuteRound(context.Background(), st.NextRound(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.ApplyRound(rr); err != nil {
			b.Fatal(err)
		}
		execs += int64(spec.BatchSize)
	}
	if st.Corpus.Len() == 0 {
		b.Fatal("campaign rounds kept no corpus entries")
	}
	b.ReportMetric(float64(execs)/b.Elapsed().Seconds(), "execs/sec")
}

// BenchmarkTASStep measures whole-execution throughput of the zoo's
// tournament test&set: one iteration is a complete 8-process run (schedule:
// round-robin, hashed tosses from a seed pre-checked to terminate), and the
// metric is shared-memory steps per second — the raw-mode exploration and
// E13/E14 hot path.
func BenchmarkTASStep(b *testing.B) {
	const n = 8
	alg, err := algos.New("tas-tournament", n)
	if err != nil {
		b.Fatal(err)
	}
	// Find the first completing seed outside the timer (randomized
	// protocols may livelock under an unlucky schedule/toss pairing).
	seed := int64(-1)
	for s := int64(0); s < 50; s++ {
		if _, err := sched.Execute(alg, n, llsc.New(n), &sched.RoundRobin{}, lowerbound.HashTosses(s), 256*n); err == nil {
			seed = s
			break
		}
	}
	if seed < 0 {
		b.Fatal("no completing seed in 50 attempts")
	}
	ta := lowerbound.HashTosses(seed)
	b.ResetTimer()
	var steps int
	for i := 0; i < b.N; i++ {
		res, err := sched.Execute(alg, n, llsc.New(n), &sched.RoundRobin{}, ta, 256*n)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.TotalSteps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/sec")
}

// BenchmarkBWLLSC measures the per-operation overhead of the Blelloch–Wei
// pointer-based LL/SC backend against the native pset-based memory on the
// same LL;SC loop — the cost E15 deliberately leaves out of its
// deterministic tables.
func BenchmarkBWLLSC(b *testing.B) {
	b.Run("native", func(b *testing.B) {
		m := llsc.New(1)
		for i := 0; i < b.N; i++ {
			m.Apply(0, shmem.Op{Kind: shmem.OpLL, Reg: 0})
			m.Apply(0, shmem.Op{Kind: shmem.OpSC, Reg: 0, Arg: i})
		}
	})
	b.Run("bw", func(b *testing.B) {
		m := bwllsc.New(1)
		for i := 0; i < b.N; i++ {
			m.Apply(0, shmem.Op{Kind: shmem.OpLL, Reg: 0})
			m.Apply(0, shmem.Op{Kind: shmem.OpSC, Reg: 0, Arg: i})
		}
	})
}
