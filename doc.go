// Package jayanti98 is a reproduction of Prasad Jayanti, "A Time Complexity
// Lower Bound for Randomized Implementations of Some Shared Objects"
// (PODC 1998), as an executable Go library.
//
// The paper proves that on a shared memory supporting LL, SC, validate,
// swap and move, any solution to the n-process wakeup problem — and hence
// any implementation of fetch&increment, fetch&and/or/complement/multiply,
// queues, stacks, or read/increment counters obtained from an oblivious
// universal construction — forces some process to perform Ω(log n) shared
// memory operations, even with randomization and even for single-use
// objects; and that the bound is tight via the Group-Update universal
// construction of Afek, Dauber and Touitou.
//
// The reproduction builds every construction in the paper as executable,
// machine-checked code:
//
//   - internal/shmem, internal/llsc — the shared memory (simulated and
//     concurrent);
//   - internal/machine, internal/sched — the process model and schedulers;
//   - internal/moveplan — secretive complete schedules (Section 4);
//   - internal/core — the adversary (Figure 2), the UP-set rules
//     (Section 5.3), the (S,A)-run (Figure 3), the Indistinguishability
//     Lemma checker, and the Theorem 6.1 machinery;
//   - internal/wakeup — wakeup algorithms and the Theorem 6.2 reductions;
//   - internal/objtype, internal/universal — sequential types and the
//     oblivious universal constructions (Group-Update, Herlihy, Central);
//   - internal/lowerbound — the experiment harness behind EXPERIMENTS.md.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced results. The benchmarks in
// bench_test.go regenerate every experiment row.
package jayanti98
